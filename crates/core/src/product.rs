//! The direct product evaluator (Prop. 2.2 / Lemma 4.2 algorithm).
//!
//! After the Lemma 4.1 merge, every connected component of the relation
//! subquery is a single atom `R(π₁,…,π_k)` with reachability atoms
//! `xᵢ →πᵢ yᵢ`. For a fixed assignment of the node variables, the atom is
//! satisfiable iff an accepting configuration is reachable in the product
//! of `k` copies of the database with `R`'s automaton: a configuration is
//! `(q, v₁,…,v_k)` — the relation state plus one database position per
//! track — starting at `(q₀, σ(x₁),…,σ(x_k))`; a convolution row moves each
//! non-`⊥` track along a matching edge, a `⊥` track must already rest at
//! its target. This is the NL-per-component procedure of Lemma 4.2,
//! implemented as BFS.
//!
//! The top level enumerates node assignments by backtracking, one merged
//! atom at a time, memoizing feasibility per (atom, endpoint tuple). Worst
//! case `O(|V|^{#nodevars})` assignments times `O(|Q|·|V|^k)` per check —
//! the PSPACE behaviour the paper proves unavoidable in general.
//!
//! The evaluator splits its state into `SharedTables` (read-only after
//! construction: trimmed automata, dense transition tables, semijoin-pruned
//! enumeration domains, the reachability closure, stamp-array sizing) and
//! the per-search mutable state (`Evaluator`: memo, visited stamps,
//! counters). The split is what makes the parallel engine
//! ([`crate::engine`]) cheap: workers borrow one `SharedTables` and each
//! carry a thread-local `Evaluator`.
//!
//! The hot BFS runs on flat data ([`Layout::Flat`], the default): CSR
//! slice lookups for successors, row-grouped dense transition tables so
//! each distinct convolution row's successor options are computed once and
//! shared across its target states, and an odometer over option slices so
//! a configuration is only allocated when it is first visited. The
//! pre-flat path is preserved verbatim as [`Layout::Legacy`] for
//! differential benchmarking (`bench_layout`, experiment E15).

use crate::bitbfs::{self, BitBfsInput, BitScratch, BumpArena};
use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::governor::{Governor, Pacer};
use crate::prepare::PreparedQuery;
use crate::semijoin::{self, PrunedDomains};
use crate::trace::{NoopTracer, Phase, PhaseSpan, Tracer};
use ecrpq_automata::{Nfa, Row, StateId, Track};
use ecrpq_graph::{Edge, GraphDb, NodeId, Path};
use ecrpq_query::{NodeVar, PathVar};
use std::collections::{BTreeSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// A full satisfying assignment: node values plus one concrete path per
/// path variable (“(f_N, f_P)” in the paper).
#[derive(Debug, Clone)]
pub struct Witness {
    /// `nodes[v]` = database vertex assigned to node variable `v`.
    pub nodes: Vec<NodeId>,
    /// One path per path variable, sorted by variable.
    pub paths: Vec<(PathVar, Path)>,
}

/// Counters exposed for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductStats {
    /// Product configurations expanded across all feasibility checks.
    pub configurations: u64,
    /// Feasibility checks actually run (memo misses).
    pub checks: u64,
    /// Memoized feasibility lookups that hit.
    pub cache_hits: u64,
    /// Node-variable assignments attempted (innermost count).
    pub assignments: u64,
    /// Peak BFS queue length across all product searches.
    pub frontier_peak: u64,
    /// Candidate values kept across semijoin-constrained variable domains.
    pub domain_kept: u64,
    /// Candidate values removed from variable domains by semijoin pruning.
    pub domain_pruned: u64,
    /// Amortized budget check-ins executed (zero on ungoverned runs).
    pub budget_checks: u64,
    /// Hot loops abandoned because the budget tripped (zero on complete
    /// runs).
    pub budget_aborts: u64,
}

impl ProductStats {
    /// Accumulates another worker's counters (saturating, so merged totals
    /// can never wrap even on pathological workloads). Work counters add;
    /// `frontier_peak` merges by maximum, and the domain counters — which
    /// describe the shared tables, identical for every worker — merge by
    /// maximum so they stay a property of the run, not of the worker count.
    pub fn merge(&mut self, other: &ProductStats) {
        self.configurations = self.configurations.saturating_add(other.configurations);
        self.checks = self.checks.saturating_add(other.checks);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.assignments = self.assignments.saturating_add(other.assignments);
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.domain_kept = self.domain_kept.max(other.domain_kept);
        self.domain_pruned = self.domain_pruned.max(other.domain_pruned);
        self.budget_checks = self.budget_checks.saturating_add(other.budget_checks);
        self.budget_aborts = self.budget_aborts.saturating_add(other.budget_aborts);
    }
}

/// Which data layout the product evaluator runs on. [`Layout::Flat`] is
/// the default everywhere; the other variants exist so benchmarks and the
/// differential suite can measure and cross-check the layers separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Layout {
    /// CSR adjacency + dense row-grouped transition tables + semijoin
    /// endpoint pruning (the production path).
    #[default]
    Flat,
    /// The flat BFS without the semijoin pruning pass: isolates the
    /// per-configuration layout win from the search-space reduction.
    FlatUnpruned,
    /// The pre-flat evaluation path — adjacency-list scans, per-transition
    /// successor recomputation, per-combination allocation — kept verbatim
    /// as the baseline for `bench_layout` and experiment E15.
    Legacy,
    /// The flat layout with the BFS inner loop replaced by the word-packed
    /// bitmap kernel of `crate::bitbfs`: dense `(state, positions)`
    /// bitmaps, CSR OR-scatter transition steps, no per-configuration
    /// allocation. Atoms whose configuration space does not fit the dense
    /// bitmaps (or exceeds the kernel's arity bound) fall back per-atom to
    /// the flat scalar path, so answers stay bit-identical to
    /// [`Layout::Flat`] on every input. Semijoin pruning runs exactly as
    /// under [`Layout::Flat`].
    BitParallel,
}

/// Evaluates a prepared Boolean query on `db` via the product algorithm.
///
/// # Panics
/// Panics if the query's alphabet size differs from the database's.
pub fn eval_product(db: &GraphDb, query: &PreparedQuery) -> bool {
    eval_product_with_stats(db, query).0
}

/// As [`eval_product`], returning the work counters.
pub fn eval_product_with_stats(db: &GraphDb, query: &PreparedQuery) -> (bool, ProductStats) {
    eval_product_with_stats_layout(db, query, Layout::Flat)
}

/// As [`eval_product_with_stats`], on an explicit [`Layout`].
pub fn eval_product_with_stats_layout(
    db: &GraphDb,
    query: &PreparedQuery,
    layout: Layout,
) -> (bool, ProductStats) {
    let tables = SharedTables::build_with_layout(db, query, layout);
    let mut e = Evaluator::with_tables(db, query, &tables);
    let r = e.boolean();
    (r, e.stats)
}

/// All answers (tuples over the free node variables), via the product
/// algorithm.
pub fn answers_product(db: &GraphDb, query: &PreparedQuery) -> BTreeSet<Vec<NodeId>> {
    let tables = SharedTables::build(db, query);
    Evaluator::with_tables(db, query, &tables).answers()
}

/// As [`answers_product`], on an explicit [`Layout`] and returning the
/// work counters. Every layout returns the identical answer set; the
/// counters differ (pruning shrinks `assignments`, the flat layouts
/// change nothing but time per configuration).
pub fn answers_product_with_stats_layout(
    db: &GraphDb,
    query: &PreparedQuery,
    layout: Layout,
) -> (BTreeSet<Vec<NodeId>>, ProductStats) {
    let tables = SharedTables::build_with_layout(db, query, layout);
    let mut e = Evaluator::with_tables(db, query, &tables);
    let answers = e.answers();
    (answers, e.stats)
}

/// A witness for a Boolean query, if satisfiable.
pub fn witness_product(db: &GraphDb, query: &PreparedQuery) -> Option<Witness> {
    let tables = SharedTables::build(db, query);
    Evaluator::with_tables(db, query, &tables).witness()
}

/// All answers, each with one concrete witness (node assignment + paths).
/// The per-answer witness uses the first satisfying assignment found.
pub fn answers_with_witnesses(db: &GraphDb, query: &PreparedQuery) -> Vec<(Vec<NodeId>, Witness)> {
    let tables = SharedTables::build(db, query);
    let mut e = Evaluator::with_tables(db, query, &tables);
    if query.num_node_vars > 0 && db.num_nodes() == 0 {
        return Vec::new();
    }
    if tables.unsatisfiable() {
        return Vec::new();
    }
    let free = query.free.clone();
    let nv = db.num_nodes();
    // collect one full assignment per distinct free tuple
    let mut reps: std::collections::BTreeMap<Vec<NodeId>, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    {
        let mut assignment = vec![UNASSIGNED; query.num_node_vars];
        let mut arena = BumpArena::new();
        e.search(0, &mut assignment, &mut |assignment| {
            let nodes: Vec<NodeId> = assignment
                .iter()
                .map(|&x| if x == UNASSIGNED { 0 } else { x as NodeId })
                .collect();
            for_each_free_tuple(assignment, &free, nv, &mut arena, |tuple, values| {
                if !reps.contains_key(tuple) {
                    // the representative assignment must agree with the
                    // expanded free choices, not default to vertex 0
                    let mut rep = nodes.clone();
                    for (&NodeVar(v), &c) in free.iter().zip(values) {
                        rep[v as usize] = c;
                    }
                    reps.insert(tuple.to_vec(), rep);
                }
                false
            });
            false
        });
    }
    let prepared = e.query;
    reps.into_iter()
        .map(|(tuple, nodes)| {
            let mut paths: Vec<(PathVar, Path)> = Vec::new();
            for (atom_idx, atom) in prepared.atoms.iter().enumerate() {
                let starts: Vec<NodeId> = atom
                    .endpoints
                    .iter()
                    .map(|&(NodeVar(s), _)| nodes[s as usize])
                    .collect();
                let ends: Vec<NodeId> = atom
                    .endpoints
                    .iter()
                    .map(|&(_, NodeVar(d))| nodes[d as usize])
                    .collect();
                let atom_paths = e
                    .component_witness(atom_idx, &starts, &ends)
                    // lint:allow(unwrap): the search only yields feasible assignments
                    .expect("answer assignments are feasible");
                for (i, p) in atom_paths.into_iter().enumerate() {
                    paths.push((atom.path_vars[i], p));
                }
            }
            paths.sort_by_key(|(p, _)| *p);
            (tuple, Witness { nodes, paths })
        })
        .collect()
}

/// Expands the unconstrained free variables of a satisfying assignment
/// over the whole domain, without cloning partial tuples: one scratch
/// tuple advanced like an odometer, `emit` called once per complete tuple
/// with the tuple and the concrete per-free-variable values. `emit`
/// returns `true` to abandon the expansion early (budget exhaustion).
///
/// Replaces the old cartesian-product loop that cloned every partial
/// tuple per choice (quadratic on wide free tuples). The scratch tuple
/// and the open-position list live in the caller's bump arena so the
/// per-answer expansion allocates nothing after the first call.
pub(crate) fn for_each_free_tuple(
    assignment: &[i64],
    free: &[NodeVar],
    nv: usize,
    arena: &mut BumpArena,
    mut emit: impl FnMut(&[NodeId], &[NodeId]) -> bool,
) {
    arena.reset();
    let buf = arena.alloc(2 * free.len());
    let (tuple, open) = arena.slice_mut(buf).split_at_mut(free.len());
    let mut open_len = 0usize; // prefix of `open`: positions ranging over V
    for (i, &NodeVar(v)) in free.iter().enumerate() {
        match assignment[v as usize] {
            UNASSIGNED => {
                open[open_len] = i as u32;
                open_len += 1;
                tuple[i] = 0;
            }
            x => tuple[i] = x as NodeId,
        }
    }
    if open_len > 0 && nv == 0 {
        return;
    }
    loop {
        if emit(tuple, tuple) {
            return;
        }
        // advance the open positions, least-significant first
        let mut i = 0;
        loop {
            let Some(&p) = open[..open_len].get(i) else {
                return;
            };
            let p = p as usize;
            tuple[p] += 1;
            if (tuple[p] as usize) < nv {
                break;
            }
            tuple[p] = 0;
            i += 1;
        }
    }
}

pub(crate) const UNASSIGNED: i64 = -1;

/// Bit budget of the all-pairs reachability closure: build it only while
/// `|V|² ≤ 2²⁷` bits (16 MiB, |V| ≲ 11.5k). Beyond that the closure's
/// O(|V|²) memory and build time would dominate any evaluation — the
/// large-graph layouts rely on the semijoin pass for endpoint pruning
/// instead.
const CLOSURE_MAX_BITS: u128 = 1 << 27;

/// Bit budget of one dense configuration bitmap for
/// [`Layout::BitParallel`]: the kernel keeps three bitmaps (visited +
/// two frontiers), so an atom qualifies while `3·space ≤ 2²⁷` bits
/// (16 MiB of scratch per worker). 10⁷ nodes × a 4-state unary automaton
/// is 4·10⁷ configurations — comfortably inside.
const BITMAP_MAX_BITS: u128 = 1 << 27;

/// Arity bound of the bit-parallel kernel: beyond triple convolutions the
/// per-configuration decode (k divisions) and the odometer bookkeeping
/// wash out the word-packing win, so wider atoms run the flat scalar path
/// (its generation stamps are cheaper at that shape).
const BITMAP_MAX_ARITY: usize = 3;

/// One row-class group of a state's outgoing transitions: the interned
/// row id plus the range of target states sharing that row. Grouping is
/// what lets the BFS compute the successor-option slices once per distinct
/// row instead of once per transition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowGroup {
    pub(crate) row: u32,
    pub(crate) targets_start: u32,
    pub(crate) targets_end: u32,
}

/// Dense transition tables of one trimmed atom automaton:
/// `groups[state_offsets[q]..state_offsets[q+1]]` are state `q`'s
/// row-class groups, each indexing a flat `targets` column.
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseAtom {
    pub(crate) state_offsets: Vec<u32>,
    pub(crate) groups: Vec<RowGroup>,
    pub(crate) targets: Vec<StateId>,
}

/// Dense tables for all atoms, with row interning **shared across
/// tracks/atoms**: every distinct convolution row is stored once in a
/// flat `row_data` column (rows have different arities, hence the bounds
/// vector rather than fixed stride).
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseTables {
    row_data: Vec<Track>,
    row_bounds: Vec<u32>,
    pub(crate) atoms: Vec<DenseAtom>,
}

impl DenseTables {
    fn build(automata: &[Nfa<Row>]) -> DenseTables {
        let mut interner: FnvHashMap<Row, u32> = FnvHashMap::default();
        let mut row_data: Vec<Track> = Vec::new();
        let mut row_bounds: Vec<u32> = vec![0];
        let mut atoms = Vec::with_capacity(automata.len());
        for nfa in automata {
            let nq = nfa.num_states();
            let mut state_offsets = Vec::with_capacity(nq + 1);
            let mut groups: Vec<RowGroup> = Vec::new();
            let mut targets: Vec<StateId> = Vec::new();
            state_offsets.push(0u32);
            for q in 0..nq as StateId {
                // `Nfa::normalize` sorts transitions by (row, target), so
                // equal rows are adjacent and one pass groups them
                let trans = nfa.transitions_from(q);
                let mut i = 0;
                while i < trans.len() {
                    let row = &trans[i].0;
                    let rid = *interner.entry(row.clone()).or_insert_with(|| {
                        row_data.extend(row.iter().copied());
                        row_bounds.push(row_data.len() as u32);
                        (row_bounds.len() - 2) as u32
                    });
                    let targets_start = targets.len() as u32;
                    while i < trans.len() && &trans[i].0 == row {
                        targets.push(trans[i].1);
                        i += 1;
                    }
                    groups.push(RowGroup {
                        row: rid,
                        targets_start,
                        targets_end: targets.len() as u32,
                    });
                }
                state_offsets.push(groups.len() as u32);
            }
            atoms.push(DenseAtom {
                state_offsets,
                groups,
                targets,
            });
        }
        DenseTables {
            row_data,
            row_bounds,
            atoms,
        }
    }

    #[inline]
    pub(crate) fn row_of(&self, rid: u32) -> &[Track] {
        &self.row_data
            [self.row_bounds[rid as usize] as usize..self.row_bounds[rid as usize + 1] as usize]
    }
}

/// Read-only evaluation state, built once per (database, query) pair and
/// shared by every worker of a parallel run.
pub(crate) struct SharedTables {
    /// ε-free trimmed relation automata, one per merged atom.
    automata: Vec<Nfa<Row>>,
    /// Flat visited-array sizes per atom (`None` = space too large, BFS
    /// falls back to hashing).
    stamp_sizes: Vec<Option<usize>>,
    /// Dense-bitmap sizes per atom for [`Layout::BitParallel`] (`None` =
    /// the atom fails the bitmap gate and falls back to the flat scalar
    /// path; always all-`None` under the other layouts).
    bitmap_sizes: Vec<Option<usize>>,
    /// Label-oblivious reachability closure: `closure[v]` = vertices
    /// reachable from `v`. A necessary condition checked before any
    /// product BFS — `ends[i]` unreachable from `starts[i]` kills the
    /// check in O(k). `None` when `|V|²` bits exceed [`CLOSURE_MAX_BITS`]
    /// (the closure is quadratic in the vertex count, so million-node
    /// graphs must skip it); skipping only loses a pruning filter, never
    /// soundness.
    closure: Option<Vec<ecrpq_automata::BitSet>>,
    /// Which data layout the BFS and enumeration run on.
    layout: Layout,
    /// Dense row-grouped transition tables (empty under [`Layout::Legacy`]).
    dense: DenseTables,
    /// Semijoin-pruned per-variable enumeration domains (all `None` unless
    /// the layout is [`Layout::Flat`]).
    domains: Vec<Option<Vec<NodeId>>>,
    /// Totals behind `domains`, surfaced into [`ProductStats`].
    domain_kept: u64,
    domain_pruned: u64,
}

impl SharedTables {
    /// # Panics
    /// Panics if the query's alphabet size differs from the database's.
    pub(crate) fn build(db: &GraphDb, query: &PreparedQuery) -> Self {
        Self::build_with_layout(db, query, Layout::Flat)
    }

    /// As [`SharedTables::build`] on an explicit [`Layout`].
    pub(crate) fn build_with_layout(db: &GraphDb, query: &PreparedQuery, layout: Layout) -> Self {
        Self::build_governed(db, query, layout, None)
    }

    /// As [`SharedTables::build_with_layout`], cooperatively checking the
    /// governor during the closure build and the semijoin sweeps. When the
    /// budget trips mid-build, the remaining closure rows stay empty and
    /// the remaining sweeps are skipped — both are necessary-condition
    /// filters, so the truncation can only *drop* answers, which is sound
    /// under the non-`Complete` termination the governor then reports.
    pub(crate) fn build_governed(
        db: &GraphDb,
        query: &PreparedQuery,
        layout: Layout,
        governor: Option<&Governor>,
    ) -> Self {
        Self::build_traced(db, query, layout, governor, &NoopTracer)
    }

    /// As [`SharedTables::build_governed`], reporting the preparation work
    /// (closure rows, dense tables) under [`Phase::Prepare`] and the
    /// endpoint-domain sweeps under [`Phase::Semijoin`] to `tracer`.
    pub(crate) fn build_traced<T: Tracer>(
        db: &GraphDb,
        query: &PreparedQuery,
        layout: Layout,
        governor: Option<&Governor>,
        tracer: &T,
    ) -> Self {
        Self::build_traced_with(db, query, layout, governor, tracer, None)
    }

    /// As [`SharedTables::build_traced`], optionally upgrading the
    /// independent semijoin sweeps to the full Yannakakis semijoin
    /// program over `join_tree` (the `Strategy::Yannakakis` preparation:
    /// globally consistent domains instead of per-atom ones).
    pub(crate) fn build_traced_with<T: Tracer>(
        db: &GraphDb,
        query: &PreparedQuery,
        layout: Layout,
        governor: Option<&Governor>,
        tracer: &T,
        join_tree: Option<&ecrpq_analyze::JoinTree>,
    ) -> Self {
        let prepare_span = PhaseSpan::start(tracer, Phase::Prepare);
        assert_eq!(
            db.alphabet().len(),
            query.num_symbols,
            "query alphabet size {} does not match database alphabet size {}",
            query.num_symbols,
            db.alphabet().len()
        );
        // trim: states that cannot reach acceptance would only bloat the
        // product configuration space
        let automata: Vec<Nfa<Row>> = query
            .atoms
            .iter()
            .map(|a| a.rel.nfa().remove_epsilon().trim())
            .collect();
        let nv = db.num_nodes().max(1) as u128;
        let stamp_sizes: Vec<Option<usize>> = query
            .atoms
            .iter()
            .zip(&automata)
            .map(|(a, nfa)| {
                let space = nv.pow(a.rel.arity() as u32) * nfa.num_states() as u128;
                (space <= (1 << 27)).then_some(space as usize)
            })
            .collect();
        let bitmap_sizes: Vec<Option<usize>> = if layout == Layout::BitParallel {
            query
                .atoms
                .iter()
                .zip(&automata)
                .map(|(a, nfa)| {
                    let arity = a.rel.arity();
                    let space = nv.pow(arity as u32) * nfa.num_states() as u128;
                    (arity <= BITMAP_MAX_ARITY && 3 * space <= BITMAP_MAX_BITS)
                        .then_some(space as usize)
                })
                .collect()
        } else {
            vec![None; query.atoms.len()]
        };
        let n = db.num_nodes();
        let closure = if (n as u128) * (n as u128) > CLOSURE_MAX_BITS {
            // quadratic in |V| — skipped on large graphs (only a filter)
            None
        } else {
            Some(match governor {
                None => (0..n as NodeId)
                    .map(|v| ecrpq_graph::paths::reachable_from(db, v))
                    .collect(),
                Some(g) => {
                    let mut rows = Vec::with_capacity(n);
                    for v in 0..n as NodeId {
                        // one checkpoint per source vertex: `reachable_from`
                        // is O(E), so the deadline is honoured per row
                        if g.checkpoint(1) {
                            rows.push(ecrpq_automata::BitSet::new(n));
                        } else {
                            rows.push(ecrpq_graph::paths::reachable_from(db, v));
                        }
                    }
                    rows
                }
            })
        };
        let dense = if layout == Layout::Legacy {
            DenseTables::default()
        } else {
            // freeze eagerly so the CSR build happens here, once, and not
            // inside the first worker's first BFS
            db.freeze();
            DenseTables::build(&automata)
        };
        tracer.count(Phase::Prepare, n as u64);
        prepare_span.finish(tracer);
        // BitParallel prunes exactly like Flat: identical domains are what
        // make the two layouts' answer sets bit-identical by construction
        let pruned = if let Some(tree) = join_tree {
            let pruned = semijoin::yannakakis_domains(db, query, &automata, tree, governor, tracer);
            tracer.prune(Phase::YannakakisDown, pruned.pruned);
            pruned
        } else if matches!(layout, Layout::Flat | Layout::BitParallel) {
            let semijoin_span = PhaseSpan::start(tracer, Phase::Semijoin);
            let pruned = semijoin::prune_domains(db, query, &automata, governor, tracer);
            tracer.prune(Phase::Semijoin, pruned.pruned);
            semijoin_span.finish(tracer);
            pruned
        } else {
            PrunedDomains::unconstrained(query.num_node_vars)
        };
        SharedTables {
            automata,
            stamp_sizes,
            bitmap_sizes,
            closure,
            layout,
            dense,
            domains: pruned.domains,
            domain_kept: pruned.kept,
            domain_pruned: pruned.pruned,
        }
    }

    /// The pruned enumeration domain of a node variable, if constrained.
    #[inline]
    pub(crate) fn domain(&self, var: u32) -> Option<&[NodeId]> {
        self.domains.get(var as usize).and_then(|d| d.as_deref())
    }

    /// Whether the semijoin pass emptied some variable's domain. Pruning is
    /// sound, so an empty domain proves the query has no satisfying
    /// assignment on this database — every entry point returns its empty
    /// result without running a single product check.
    pub(crate) fn unsatisfiable(&self) -> bool {
        self.domains
            .iter()
            .any(|d| d.as_ref().is_some_and(|dom| dom.is_empty()))
    }
}

pub(crate) struct Evaluator<'a, T: Tracer = NoopTracer> {
    db: &'a GraphDb,
    pub(crate) query: &'a PreparedQuery,
    tables: &'a SharedTables,
    memo: FnvHashMap<(usize, Vec<NodeId>, Vec<NodeId>), bool>,
    pub(crate) stats: ProductStats,
    /// Configuration trace of the last witness-mode BFS.
    last_witness_configs: Option<Vec<(StateId, Vec<NodeId>)>>,
    /// Per-atom generation-stamped visited arrays for flat-indexable
    /// configuration spaces (`None` when the space is too large, in which
    /// case the BFS falls back to hashing). Under [`Layout::BitParallel`]
    /// a stamp is only allocated for atoms that *fell back* to the flat
    /// scalar path — bitmap-kernel atoms never touch it.
    stamps: Vec<Option<Vec<u32>>>,
    /// Per-atom bitmap kernel scratch (visited/frontier/next bitmaps +
    /// word lists) under [`Layout::BitParallel`]; `None` for fallback
    /// atoms and under every other layout.
    bit_scratch: Vec<Option<BitScratch>>,
    generation: u32,
    /// When set, the first variable assigned by the top-level search only
    /// ranges over this sub-range of the domain — the parallel engine's
    /// partitioning hook.
    first_var_range: Option<Range<NodeId>>,
    /// Cooperative cancellation for parallel Boolean search: checked at
    /// every top-level domain step; a worker that finds a satisfying
    /// assignment sets it and the others abandon their chunks.
    stop: Option<&'a AtomicBool>,
    /// Per-worker budget bookkeeping: counts work units (one per
    /// feasibility check plus one per BFS configuration) and checks in
    /// with the shared governor every ~4k units. A no-op when the run is
    /// ungoverned.
    pacer: Pacer<'a>,
    /// Observability hooks; [`NoopTracer`] (the default) erases them.
    tracer: T,
}

impl<'a> Evaluator<'a> {
    pub(crate) fn with_tables(
        db: &'a GraphDb,
        query: &'a PreparedQuery,
        tables: &'a SharedTables,
    ) -> Self {
        Evaluator::with_tables_traced(db, query, tables, NoopTracer)
    }
}

impl<'a, T: Tracer> Evaluator<'a, T> {
    /// As [`Evaluator::with_tables`], recording per-phase counters and
    /// times into `tracer`. With [`NoopTracer`] this monomorphizes to the
    /// untraced evaluator exactly.
    pub(crate) fn with_tables_traced(
        db: &'a GraphDb,
        query: &'a PreparedQuery,
        tables: &'a SharedTables,
        tracer: T,
    ) -> Self {
        // a bitmap-kernel atom never consults its stamp array, so skip the
        // allocation for it; fallback atoms (and every other layout) get
        // their stamps as before — this is the "downgrade still allocates
        // stamps" path whose bytes `set_governor` must see
        let stamps: Vec<Option<Vec<u32>>> = tables
            .stamp_sizes
            .iter()
            .zip(&tables.bitmap_sizes)
            .map(|(size, bitmap)| {
                if bitmap.is_some() {
                    None
                } else {
                    size.map(|s| vec![0u32; s])
                }
            })
            .collect();
        let bit_scratch = tables
            .bitmap_sizes
            .iter()
            .map(|size| size.map(BitScratch::new))
            .collect();
        Evaluator {
            db,
            query,
            tables,
            memo: FnvHashMap::default(),
            stats: ProductStats {
                domain_kept: tables.domain_kept,
                domain_pruned: tables.domain_pruned,
                ..ProductStats::default()
            },
            last_witness_configs: None,
            stamps,
            bit_scratch,
            generation: 0,
            first_var_range: None,
            stop: None,
            pacer: Pacer::new(None),
            tracer,
        }
    }

    /// Restricts the top-level variable to `range` (parallel partitioning).
    pub(crate) fn set_first_var_range(&mut self, range: Range<NodeId>) {
        self.first_var_range = Some(range);
    }

    /// Installs the cross-worker cancellation flag.
    pub(crate) fn set_stop(&mut self, stop: &'a AtomicBool) {
        self.stop = Some(stop);
    }

    /// Installs the shared budget governor and charges this worker's
    /// fixed allocations to the tracked-memory estimate: the visited-stamp
    /// arrays **and** the bit-parallel bitmaps. The stamp sum is computed
    /// from the arrays actually allocated, not from `tables.stamp_sizes` —
    /// under a `BitParallel` per-atom downgrade the fallback atoms carry
    /// stamps even though the layout nominally doesn't, and deriving the
    /// charge from the layout would let those bytes slip past the budget
    /// (the regression in `tests/budget_differential.rs` pins this).
    pub(crate) fn set_governor(&mut self, governor: &'a Governor) {
        let stamp_bytes: u64 = self
            .stamps
            .iter()
            .flatten()
            .map(|s| 4 * s.len() as u64)
            .sum();
        let bitmap_bytes: u64 = self
            .bit_scratch
            .iter()
            .flatten()
            .map(BitScratch::bytes)
            .sum();
        governor.charge_memory(stamp_bytes + bitmap_bytes);
        self.pacer = Pacer::new(Some(governor));
    }

    /// Flushes locally counted work units to the governor; call when a
    /// worker finishes so the shared work counter stays accurate.
    pub(crate) fn flush_budget(&mut self) {
        self.pacer.flush();
    }

    /// Combined cooperative-cancellation check: the parallel early-success
    /// flag or the budget governor's stop flag.
    #[inline]
    pub(crate) fn should_stop(&self) -> bool {
        self.stop.is_some_and(|s| s.load(Ordering::Relaxed)) || self.pacer.stopped()
    }

    pub(crate) fn boolean(&mut self) -> bool {
        if self.query.num_node_vars > 0 && self.db.num_nodes() == 0 {
            return false;
        }
        if self.tables.unsatisfiable() {
            return false;
        }
        let mut assignment = vec![UNASSIGNED; self.query.num_node_vars];
        self.search(0, &mut assignment, &mut |_| true)
    }

    pub(crate) fn answers(&mut self) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        self.answers_into(&mut out);
        out
    }

    /// As [`Self::answers`], accumulating into an existing set (so a
    /// parallel worker can reuse one set across chunks).
    pub(crate) fn answers_into(&mut self, out: &mut BTreeSet<Vec<NodeId>>) {
        if self.query.num_node_vars > 0 && self.db.num_nodes() == 0 {
            return;
        }
        if self.tables.unsatisfiable() {
            return;
        }
        let free = self.query.free.clone();
        let nv = self.db.num_nodes();
        let mut assignment = vec![UNASSIGNED; self.query.num_node_vars];
        let governor = self.pacer.governor();
        // the free-tuple odometer charges its own work units: a query with
        // few constrained variables can emit |V|^f tuples per satisfying
        // assignment without running a single product check
        let mut odometer_work: u64 = 0;
        let tracer = self.tracer.clone();
        let mut arena = BumpArena::new();
        self.search(0, &mut assignment, &mut |assignment| {
            let span = PhaseSpan::start(&tracer, Phase::Odometer);
            let mut tripped = false;
            for_each_free_tuple(assignment, &free, nv, &mut arena, |tuple, _| {
                tracer.count(Phase::Odometer, 1);
                if let Some(g) = governor {
                    odometer_work += 1;
                    if odometer_work >= g.check_interval() {
                        tracer.governor_check(Phase::Odometer, 1);
                        let _ = g.checkpoint(std::mem::take(&mut odometer_work));
                    }
                    if g.stopped() {
                        tracer.governor_check(Phase::Odometer, 1);
                        tracer.governor_abort(Phase::Odometer);
                        tripped = true;
                        return true;
                    }
                }
                if !out.contains(tuple) {
                    if let Some(g) = governor {
                        if !g.try_claim_answer() {
                            tracer.governor_check(Phase::Odometer, 1);
                            tracer.governor_abort(Phase::Odometer);
                            tripped = true;
                            return true;
                        }
                        // answers are retained: charge them to the
                        // tracked-memory estimate
                        g.charge_memory(24 + 4 * tuple.len() as u64);
                    }
                    out.insert(tuple.to_vec());
                }
                false
            });
            span.finish(&tracer);
            tripped // abandon the search once the budget trips
        });
        if odometer_work > 0 {
            if let Some(g) = governor {
                g.checkpoint(odometer_work);
            }
        }
    }

    fn witness(&mut self) -> Option<Witness> {
        if self.query.num_node_vars > 0 && self.db.num_nodes() == 0 {
            return None;
        }
        if self.tables.unsatisfiable() {
            return None;
        }
        let mut assignment = vec![UNASSIGNED; self.query.num_node_vars];
        let mut found: Option<Vec<NodeId>> = None;
        self.search(0, &mut assignment, &mut |assignment| {
            // default unconstrained variables to vertex 0
            let nodes: Vec<NodeId> = assignment
                .iter()
                .map(|&x| if x == UNASSIGNED { 0 } else { x as NodeId })
                .collect();
            found = Some(nodes);
            true
        });
        let nodes = found?;
        let mut paths: Vec<(PathVar, Path)> = Vec::new();
        for (ai, atom) in self.query.atoms.iter().enumerate() {
            let starts: Vec<NodeId> = atom
                .endpoints
                .iter()
                .map(|&(NodeVar(s), _)| nodes[s as usize])
                .collect();
            let ends: Vec<NodeId> = atom
                .endpoints
                .iter()
                .map(|&(_, NodeVar(d))| nodes[d as usize])
                .collect();
            let atom_paths = self
                .component_witness(ai, &starts, &ends)
                // lint:allow(unwrap): the search only yields feasible assignments
                .expect("feasible atom must yield a witness");
            for (i, p) in atom_paths.into_iter().enumerate() {
                paths.push((atom.path_vars[i], p));
            }
        }
        paths.sort_by_key(|(p, _)| *p);
        Some(Witness { nodes, paths })
    }

    /// Backtracking over merged atoms; `on_success` is called with the full
    /// assignment and returns `true` to stop the search.
    fn search(
        &mut self,
        atom_idx: usize,
        assignment: &mut Vec<i64>,
        on_success: &mut impl FnMut(&[i64]) -> bool,
    ) -> bool {
        if atom_idx == self.query.atoms.len() {
            self.stats.assignments += 1;
            return on_success(assignment);
        }
        let atom = &self.query.atoms[atom_idx];
        // Variables of this atom not yet assigned.
        let mut vars: Vec<u32> = atom
            .endpoints
            .iter()
            .flat_map(|&(NodeVar(s), NodeVar(d))| [s, d])
            .filter(|&v| assignment[v as usize] == UNASSIGNED)
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let nv = self.db.num_nodes() as NodeId;
        self.enumerate(atom_idx, &vars, 0, assignment, nv, on_success)
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &mut self,
        atom_idx: usize,
        vars: &[u32],
        vi: usize,
        assignment: &mut Vec<i64>,
        nv: NodeId,
        on_success: &mut impl FnMut(&[i64]) -> bool,
    ) -> bool {
        if vi == vars.len() {
            let atom = &self.query.atoms[atom_idx];
            let starts: Vec<NodeId> = atom
                .endpoints
                .iter()
                .map(|&(NodeVar(s), _)| assignment[s as usize] as NodeId)
                .collect();
            let ends: Vec<NodeId> = atom
                .endpoints
                .iter()
                .map(|&(_, NodeVar(d))| assignment[d as usize] as NodeId)
                .collect();
            if self.feasible(atom_idx, &starts, &ends) {
                return self.search(atom_idx + 1, assignment, on_success);
            }
            return false;
        }
        // the first variable of the first atom is the parallel partition
        // point: a worker only walks its assigned sub-range
        let range = if atom_idx == 0 && vi == 0 {
            self.first_var_range.clone().unwrap_or(0..nv)
        } else {
            0..nv
        };
        // walk the semijoin-pruned domain when the variable has one —
        // values outside it cannot satisfy some atom, so skipping them
        // cannot lose answers
        // copy the `&'a SharedTables` out of self so the domain slice
        // borrows the tables, not self — the recursion needs `&mut self`
        let tables: &'a SharedTables = self.tables;
        match tables.domain(vars[vi]) {
            Some(dom) => {
                let lo = dom.partition_point(|&x| x < range.start);
                let hi = dom.partition_point(|&x| x < range.end);
                let dom = &dom[lo..hi];
                self.enumerate_values(
                    atom_idx,
                    vars,
                    vi,
                    assignment,
                    nv,
                    on_success,
                    dom.iter().copied(),
                )
            }
            None => self.enumerate_values(atom_idx, vars, vi, assignment, nv, on_success, range),
        }
    }

    /// The domain walk of one variable: assign each candidate value and
    /// recurse; restores `UNASSIGNED` on exit either way.
    #[allow(clippy::too_many_arguments)]
    fn enumerate_values(
        &mut self,
        atom_idx: usize,
        vars: &[u32],
        vi: usize,
        assignment: &mut Vec<i64>,
        nv: NodeId,
        on_success: &mut impl FnMut(&[i64]) -> bool,
        values: impl Iterator<Item = NodeId>,
    ) -> bool {
        let var = vars[vi] as usize;
        for v in values {
            if self.should_stop() {
                break;
            }
            assignment[var] = i64::from(v);
            if self.enumerate(atom_idx, vars, vi + 1, assignment, nv, on_success) {
                assignment[var] = UNASSIGNED;
                return true;
            }
        }
        assignment[var] = UNASSIGNED;
        false
    }

    /// Memoized product-reachability check for one merged atom with fixed
    /// endpoints.
    pub(crate) fn feasible(&mut self, atom_idx: usize, starts: &[NodeId], ends: &[NodeId]) -> bool {
        // one work unit per check keeps the deadline honoured even when
        // every check is a closure reject or a memo hit (no BFS configs)
        let _ = self.pacer.tick_traced(&self.tracer, Phase::ProductBfs);
        // necessary condition: every target plain-reachable from its
        // source (filter only — skipped when the graph is too large for
        // the quadratic closure)
        if let Some(closure) = &self.tables.closure {
            if starts
                .iter()
                .zip(ends)
                .any(|(&s, &e)| !closure[s as usize].contains(e as usize))
            {
                return false;
            }
        }
        let key = (atom_idx, starts.to_vec(), ends.to_vec());
        if let Some(&r) = self.memo.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        self.stats.checks += 1;
        let span = PhaseSpan::start(&self.tracer, Phase::ProductBfs);
        let result = self.product_bfs(atom_idx, starts, ends, false).is_some();
        span.finish(&self.tracer);
        if !result && self.pacer.stopped() {
            // the BFS may have been truncated by the budget, so an
            // "infeasible" verdict is unproven — report it (losing answers
            // is sound under a non-`Complete` termination) but never
            // memoize it
            return false;
        }
        if let Some(g) = self.pacer.governor() {
            // coarse per-entry estimate: two endpoint vectors + value +
            // hash-table overhead
            g.charge_memory(64 + 8 * starts.len() as u64);
        }
        self.memo.insert(key, result);
        result
    }

    /// Witness paths for a feasible atom. A row alone does not determine
    /// the chosen edge when a vertex has several same-label successors, so
    /// the BFS records full parent configurations and we rebuild each
    /// track's path from consecutive configuration pairs.
    fn component_witness(
        &mut self,
        atom_idx: usize,
        starts: &[NodeId],
        ends: &[NodeId],
    ) -> Option<Vec<Path>> {
        let rows = self.product_bfs(atom_idx, starts, ends, true)?;
        // lint:allow(unwrap): witness-mode BFS always records its configurations
        let configs = self.last_witness_configs.take().expect("witness configs");
        debug_assert_eq!(configs.len(), rows.len() + 1);
        let k = starts.len();
        let mut paths: Vec<Path> = starts.iter().map(|&s| Path::empty(s)).collect();
        for (step, row) in rows.iter().enumerate() {
            let before = &configs[step];
            let after = &configs[step + 1];
            for i in 0..k {
                if let Track::Sym(a) = row[i] {
                    paths[i].push(Edge {
                        src: before.1[i],
                        label: a,
                        dst: after.1[i],
                    });
                }
            }
        }
        Some(paths)
    }

    /// BFS over configurations `(state, positions)`. Returns `Some(rows)` if
    /// an accepting configuration is reachable (empty rows vector when the
    /// initial configuration accepts); in witness mode also stores the
    /// configuration trace in `self.last_witness_configs`. Dispatches on
    /// the shared tables' [`Layout`].
    fn product_bfs(
        &mut self,
        atom_idx: usize,
        starts: &[NodeId],
        ends: &[NodeId],
        want_witness: bool,
    ) -> Option<Vec<Row>> {
        if self.tables.layout == Layout::Legacy {
            return self.product_bfs_legacy(atom_idx, starts, ends, want_witness);
        }
        // the bitmap kernel holds no parent links, so witness mode always
        // runs the scalar path; fallback atoms (no scratch) do too
        if !want_witness {
            if let Some(scratch) = self.bit_scratch[atom_idx].take() {
                let mut scratch = scratch;
                let input = BitBfsInput {
                    db: self.db,
                    nfa: &self.tables.automata[atom_idx],
                    atom: &self.tables.dense.atoms[atom_idx],
                    dense: &self.tables.dense,
                    starts,
                    ends,
                    nv: self.db.num_nodes().max(1),
                };
                let hit = bitbfs::run(
                    &input,
                    &mut scratch,
                    &mut self.pacer,
                    &self.tracer,
                    &mut self.stats,
                );
                self.bit_scratch[atom_idx] = Some(scratch);
                return hit.then(Vec::new);
            }
        }
        self.product_bfs_flat(atom_idx, starts, ends, want_witness)
    }

    /// The flat-layout BFS inner loop. Per popped configuration it walks
    /// the state's row-class groups; per group it assembles the successor
    /// option **slices** (CSR lookups, no allocation; a `⊥` track's only
    /// option is its — already reached — target), then drives an odometer
    /// over the slices, reusing one scratch combination vector. A
    /// configuration is cloned onto the queue only when it is first
    /// visited, and the row options are shared by every target state of
    /// the group.
    fn product_bfs_flat(
        &mut self,
        atom_idx: usize,
        starts: &[NodeId],
        ends: &[NodeId],
        want_witness: bool,
    ) -> Option<Vec<Row>> {
        let db = self.db;
        let tables = self.tables;
        let nfa = &tables.automata[atom_idx];
        let atom = &tables.dense.atoms[atom_idx];
        let dense = &tables.dense;
        let k = starts.len();
        let nv = db.num_nodes().max(1);
        type Config = (StateId, Vec<NodeId>);
        let encode = |q: StateId, pos: &[NodeId]| -> usize {
            let mut idx = q as usize;
            for &p in pos {
                idx = idx * nv + p as usize;
            }
            idx
        };
        // Flat generation-stamped visited array when the space fits (the
        // common case); hashing otherwise or in witness mode.
        let mut stamp = if want_witness {
            None
        } else {
            self.stamps[atom_idx].take()
        };
        if stamp.is_some() {
            self.generation += 1;
        }
        let generation = self.generation;
        let mut seen: FnvHashSet<Config> = FnvHashSet::default();
        let mut mark = |q: StateId, pos: &[NodeId], seen: &mut FnvHashSet<Config>| -> bool {
            match &mut stamp {
                Some(s) => {
                    let idx = encode(q, pos);
                    if s[idx] == generation {
                        false
                    } else {
                        s[idx] = generation;
                        true
                    }
                }
                None => seen.insert((q, pos.to_vec())),
            }
        };
        let mut parent: FnvHashMap<Config, (Config, u32)> = FnvHashMap::default();
        let mut queue: VecDeque<Config> = VecDeque::new();
        for &q in nfa.initial_states() {
            if mark(q, starts, &mut seen) {
                queue.push_back((q, starts.to_vec()));
            }
        }
        let mut peak = queue.len() as u64;
        let mut opts: Vec<&[NodeId]> = Vec::with_capacity(k);
        let mut odometer: Vec<usize> = vec![0; k];
        let mut combo: Vec<NodeId> = vec![0; k];
        let mut goal: Option<Config> = None;
        'bfs: while let Some((q, pos)) = queue.pop_front() {
            self.stats.configurations += 1;
            if T::ENABLED {
                self.tracer.count(Phase::ProductBfs, 1);
            }
            // cooperative budget check, amortized to every ~4k configs
            if self.pacer.tick_traced(&self.tracer, Phase::ProductBfs) {
                self.stats.budget_aborts += 1;
                break 'bfs;
            }
            if nfa.is_final(q) && pos == ends {
                goal = Some((q, pos));
                break 'bfs;
            }
            let gs = atom.state_offsets[q as usize] as usize
                ..atom.state_offsets[q as usize + 1] as usize;
            'groups: for g in &atom.groups[gs] {
                let row = dense.row_of(g.row);
                opts.clear();
                for (i, t) in row.iter().enumerate() {
                    match *t {
                        Track::Pad => {
                            if pos[i] != ends[i] {
                                continue 'groups;
                            }
                            opts.push(std::slice::from_ref(&ends[i]));
                        }
                        Track::Sym(a) => {
                            let s = db.successors(pos[i], a);
                            if s.is_empty() {
                                continue 'groups;
                            }
                            opts.push(s);
                        }
                    }
                }
                let targets = &atom.targets[g.targets_start as usize..g.targets_end as usize];
                for (i, o) in opts.iter().enumerate() {
                    odometer[i] = 0;
                    combo[i] = o[0];
                }
                'combos: loop {
                    for &q2 in targets {
                        if mark(q2, &combo, &mut seen) {
                            let c: Config = (q2, combo.clone());
                            if want_witness {
                                parent.insert(c.clone(), ((q, pos.clone()), g.row));
                            }
                            queue.push_back(c);
                        }
                    }
                    let mut i = 0;
                    loop {
                        if i == k {
                            break 'combos;
                        }
                        odometer[i] += 1;
                        if odometer[i] < opts[i].len() {
                            combo[i] = opts[i][odometer[i]];
                            break;
                        }
                        odometer[i] = 0;
                        combo[i] = opts[i][0];
                        i += 1;
                    }
                }
            }
            peak = peak.max(queue.len() as u64);
        }
        self.stamps[atom_idx] = stamp;
        self.stats.frontier_peak = self.stats.frontier_peak.max(peak);
        if T::ENABLED {
            self.tracer.frontier(Phase::ProductBfs, peak);
        }
        let goal = goal?;
        if !want_witness {
            return Some(Vec::new());
        }
        // reconstruct configuration trace + rows
        let mut rows: Vec<Row> = Vec::new();
        let mut configs: Vec<Config> = vec![goal.clone()];
        let mut cur = goal;
        while let Some((prev, rid)) = parent.get(&cur) {
            // lint:allow(unguarded-loop): O(path-length) trace rebuild
            rows.push(dense.row_of(*rid).to_vec());
            configs.push(prev.clone());
            cur = prev.clone();
        }
        rows.reverse();
        configs.reverse();
        self.last_witness_configs = Some(configs);
        Some(rows)
    }

    /// The pre-flat BFS, preserved as the [`Layout::Legacy`] baseline:
    /// per-transition adjacency scans and eager materialization of every
    /// successor combination.
    fn product_bfs_legacy(
        &mut self,
        atom_idx: usize,
        starts: &[NodeId],
        ends: &[NodeId],
        want_witness: bool,
    ) -> Option<Vec<Row>> {
        let nfa = &self.tables.automata[atom_idx];
        let k = starts.len();
        let nv = self.db.num_nodes().max(1);
        type Config = (StateId, Vec<NodeId>);
        let accepting = |q: StateId, pos: &[NodeId]| nfa.is_final(q) && pos == ends;
        let encode = |q: StateId, pos: &[NodeId]| -> usize {
            let mut idx = q as usize;
            for &p in pos {
                idx = idx * nv + p as usize;
            }
            idx
        };
        let mut stamp = if want_witness {
            None
        } else {
            self.stamps[atom_idx].take()
        };
        if stamp.is_some() {
            self.generation += 1;
        }
        let generation = self.generation;
        let mut seen: FnvHashSet<Config> = FnvHashSet::default();
        let mut mark = |q: StateId, pos: &[NodeId], seen: &mut FnvHashSet<Config>| -> bool {
            match &mut stamp {
                Some(s) => {
                    let idx = encode(q, pos);
                    if s[idx] == generation {
                        false
                    } else {
                        s[idx] = generation;
                        true
                    }
                }
                None => seen.insert((q, pos.to_vec())),
            }
        };
        let mut parent: FnvHashMap<Config, (Config, Row)> = FnvHashMap::default();
        let mut queue: VecDeque<Config> = VecDeque::new();
        for &q in nfa.initial_states() {
            if mark(q, starts, &mut seen) {
                queue.push_back((q, starts.to_vec()));
            }
        }
        let mut peak = queue.len() as u64;
        let mut goal: Option<Config> = None;
        'bfs: while let Some((q, pos)) = queue.pop_front() {
            self.stats.configurations += 1;
            if T::ENABLED {
                self.tracer.count(Phase::ProductBfs, 1);
            }
            // cooperative budget check, amortized to every ~4k configs
            if self.pacer.tick_traced(&self.tracer, Phase::ProductBfs) {
                self.stats.budget_aborts += 1;
                break 'bfs;
            }
            if accepting(q, &pos) {
                goal = Some((q, pos));
                break 'bfs;
            }
            for (row, q2) in nfa.transitions_from(q) {
                // successor position options per track
                let mut options: Vec<Vec<NodeId>> = Vec::with_capacity(k);
                let mut dead = false;
                for i in 0..k {
                    match row[i] {
                        Track::Pad => {
                            if pos[i] == ends[i] {
                                options.push(vec![pos[i]]);
                            } else {
                                dead = true;
                                break;
                            }
                        }
                        Track::Sym(a) => {
                            let succ: Vec<NodeId> = self.db.successors_scan(pos[i], a).collect();
                            if succ.is_empty() {
                                dead = true;
                                break;
                            }
                            options.push(succ);
                        }
                    }
                }
                if dead {
                    continue;
                }
                // cartesian product of options
                let mut combos: Vec<Vec<NodeId>> = vec![Vec::with_capacity(k)];
                for opt in &options {
                    let mut next = Vec::with_capacity(combos.len() * opt.len());
                    for c in &combos {
                        for &o in opt {
                            let mut c2 = c.clone();
                            c2.push(o);
                            next.push(c2);
                        }
                    }
                    combos = next;
                }
                for combo in combos {
                    if mark(*q2, &combo, &mut seen) {
                        let c: Config = (*q2, combo);
                        if want_witness {
                            parent.insert(c.clone(), ((q, pos.clone()), row.clone()));
                        }
                        queue.push_back(c);
                    }
                }
            }
            peak = peak.max(queue.len() as u64);
        }
        self.stamps[atom_idx] = stamp;
        self.stats.frontier_peak = self.stats.frontier_peak.max(peak);
        if T::ENABLED {
            self.tracer.frontier(Phase::ProductBfs, peak);
        }
        let goal = goal?;
        if !want_witness {
            return Some(Vec::new());
        }
        // reconstruct configuration trace + rows
        let mut rows: Vec<Row> = Vec::new();
        let mut configs: Vec<Config> = vec![goal.clone()];
        let mut cur = goal;
        while let Some((prev, row)) = parent.get(&cur) {
            // lint:allow(unguarded-loop): O(path-length) trace rebuild
            rows.push(row.clone());
            configs.push(prev.clone());
            cur = prev.clone();
        }
        rows.reverse();
        configs.reverse();
        self.last_witness_configs = Some(configs);
        Some(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::{relations, Alphabet};
    use ecrpq_query::Ecrpq;
    use std::sync::Arc;

    fn prepare(q: &Ecrpq) -> PreparedQuery {
        PreparedQuery::build(q).unwrap()
    }

    /// Two parallel chains of equal length from s: the Example 2.1 query
    /// should relate their startpoints.
    fn two_chain_db() -> GraphDb {
        // s1 -a-> m1 -a-> t ; s2 -b-> m2 -b-> t ; s3 -a-> t
        let mut g = GraphDb::new();
        let s1 = g.add_node("s1");
        let m1 = g.add_node("m1");
        let t = g.add_node("t");
        let s2 = g.add_node("s2");
        let m2 = g.add_node("m2");
        let s3 = g.add_node("s3");
        g.add_edge(s1, 'a', m1);
        g.add_edge(m1, 'a', t);
        g.add_edge(s2, 'b', m2);
        g.add_edge(m2, 'b', t);
        g.add_edge(s3, 'a', t);
        g
    }

    fn example_2_1_query(db: &GraphDb) -> Ecrpq {
        let mut q = Ecrpq::new(db.alphabet().clone());
        let x = q.node_var("x");
        let x2 = q.node_var("x'");
        let y = q.node_var("y");
        let p1 = q.path_atom(x, "p1", y);
        let p2 = q.path_atom(x2, "p2", y);
        q.rel_atom(
            "eq_len",
            Arc::new(relations::eq_length(2, db.alphabet().len())),
            &[p1, p2],
        );
        q.set_free(&[x, x2]);
        q
    }

    #[test]
    fn example_2_1_answers() {
        let db = two_chain_db();
        let q = example_2_1_query(&db);
        let answers = answers_product(&db, &prepare(&q));
        let (s1, s2, s3) = (0u32, 3u32, 5u32);
        // equal-length pairs into t: (s1,s2) both length 2, (s3,s3), etc.
        assert!(answers.contains(&vec![s1, s2]));
        assert!(answers.contains(&vec![s2, s1]));
        assert!(answers.contains(&vec![s1, s1]));
        assert!(answers.contains(&vec![s3, s3]));
        assert!(!answers.contains(&vec![s1, s3])); // lengths 2 vs 1
                                                   // trivial equal-length: empty paths from the same vertex
        assert!(answers.contains(&vec![2, 2]));
    }

    #[test]
    fn all_layouts_agree_on_answers() {
        let db = two_chain_db();
        let q = example_2_1_query(&db);
        let p = prepare(&q);
        let (flat, flat_stats) = answers_product_with_stats_layout(&db, &p, Layout::Flat);
        let (unpruned, _) = answers_product_with_stats_layout(&db, &p, Layout::FlatUnpruned);
        let (legacy, legacy_stats) = answers_product_with_stats_layout(&db, &p, Layout::Legacy);
        let (bitpar, bitpar_stats) =
            answers_product_with_stats_layout(&db, &p, Layout::BitParallel);
        assert_eq!(flat, unpruned);
        assert_eq!(flat, legacy);
        assert_eq!(flat, bitpar);
        assert!(bitpar_stats.frontier_peak > 0);
        // pruning counters only populate on the pruned layout
        assert!(flat_stats.domain_kept > 0);
        assert_eq!(legacy_stats.domain_kept, 0);
        assert!(flat_stats.frontier_peak > 0);
        assert!(legacy_stats.frontier_peak > 0);
    }

    /// The bit-parallel size gate, inspected directly on the shared
    /// tables: a small dense space gets a bitmap, an oversized space or a
    /// wide atom is downgraded to the scalar path — per atom, and only
    /// under `Layout::BitParallel`.
    #[test]
    fn bitmap_gate_downgrades_oversized_and_wide_atoms() {
        let db = two_chain_db();
        let q = example_2_1_query(&db);
        let p = prepare(&q);
        // 6 nodes × a few states: comfortably inside the gate
        let tables = SharedTables::build_with_layout(&db, &p, Layout::BitParallel);
        assert!(tables.bitmap_sizes.iter().all(Option::is_some));
        // other layouts never allocate bitmaps, whatever the size
        let flat = SharedTables::build_with_layout(&db, &p, Layout::Flat);
        assert!(flat.bitmap_sizes.iter().all(Option::is_none));

        // 300k vertices push the arity-2 space to states × 9·10¹⁰
        // configurations — far past `BITMAP_MAX_BITS`, so every atom must
        // fall back (and the closure gate skips the all-pairs table too)
        let mut big = GraphDb::with_alphabet(db.alphabet().clone());
        big.add_nodes_anon(300_000);
        let tables = SharedTables::build_with_layout(&big, &p, Layout::BitParallel);
        assert!(tables.bitmap_sizes.iter().all(Option::is_none));
        assert!(tables.closure.is_none());

        // an arity-4 atom exceeds `BITMAP_MAX_ARITY` on any graph; the
        // downgrade keeps the scalar stamp array (whose bytes the governor
        // must still see — tests/budget_differential.rs pins that end)
        let mut q4 = Ecrpq::new(db.alphabet().clone());
        let x = q4.node_var("x");
        let y = q4.node_var("y");
        let ps: Vec<_> = (0..4)
            .map(|i| q4.path_atom(x, &format!("p{i}"), y))
            .collect();
        q4.rel_atom(
            "eq4",
            Arc::new(relations::eq_length(4, db.alphabet().len())),
            &ps,
        );
        let p4 = prepare(&q4);
        let t4 = SharedTables::build_with_layout(&db, &p4, Layout::BitParallel);
        assert!(t4.bitmap_sizes.iter().all(Option::is_none));
        assert!(t4.stamp_sizes.iter().all(Option::is_some));
    }

    /// An unsatisfiable word-relation atom (`aaa` on a 2-edge chain)
    /// empties its endpoint domains; the evaluator must then do *no* work
    /// at all — not even for the other, satisfiable atom group.
    #[test]
    fn empty_pruned_domain_short_circuits_search() {
        let mut db = GraphDb::new();
        let u = db.add_node("u");
        let v = db.add_node("v");
        let w = db.add_node("w");
        db.add_edge(u, 'a', v);
        db.add_edge(v, 'a', w);
        let mut q = Ecrpq::new(db.alphabet().clone());
        let x = q.node_var("x");
        let y = q.node_var("y");
        let z = q.node_var("z");
        let t = q.node_var("t");
        let p = q.path_atom(x, "p", y);
        let r = q.path_atom(z, "r", t);
        // satisfiable group: `aa` relates u to w
        q.rel_atom("aa", Arc::new(relations::word_relation(&[0, 0], 1)), &[p]);
        // unsatisfiable group: no 3-step `a`-path exists anywhere
        q.rel_atom(
            "aaa",
            Arc::new(relations::word_relation(&[0, 0, 0], 1)),
            &[r],
        );
        let prepared = prepare(&q);
        let (sat, stats) = eval_product_with_stats(&db, &prepared);
        assert!(!sat);
        assert_eq!(stats.configurations, 0);
        assert_eq!(stats.checks, 0);
        assert_eq!(stats.assignments, 0);
        assert_eq!(stats.domain_kept, 2); // u for x, w for y
        assert!(stats.domain_pruned >= 6); // z and t fully emptied
                                           // answers and witness short-circuit the same way
        let (ans, astats) = answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
        assert!(ans.is_empty());
        assert_eq!(astats.assignments, 0);
        assert!(witness_product(&db, &prepared).is_none());
        assert!(answers_with_witnesses(&db, &prepared).is_empty());
        // the unpruned layout reaches the same verdict by searching
        let (unpruned, ustats) =
            answers_product_with_stats_layout(&db, &prepared, Layout::FlatUnpruned);
        assert!(unpruned.is_empty());
        assert!(ustats.checks > 0);
    }

    #[test]
    fn boolean_and_witness() {
        let db = two_chain_db();
        let mut q = example_2_1_query(&db);
        q.set_free(&[]); // make Boolean
        let p = prepare(&q);
        assert!(eval_product(&db, &p));
        let w = witness_product(&db, &p).unwrap();
        assert_eq!(w.paths.len(), 2);
        // witness paths must be valid, match endpoints, and have equal length
        let (p1, p2) = (&w.paths[0].1, &w.paths[1].1);
        assert!(p1.is_valid_in(&db));
        assert!(p2.is_valid_in(&db));
        assert_eq!(p1.len(), p2.len());
        assert_eq!(p1.target(), p2.target());
        assert_eq!(p1.source(), w.nodes[0]);
        assert_eq!(p2.source(), w.nodes[1]);
    }

    #[test]
    fn unsatisfiable_query() {
        // require an 'a'-labelled path of length exactly 3 in a 2-edge chain
        let mut db = GraphDb::new();
        let u = db.add_node("u");
        let v = db.add_node("v");
        let w = db.add_node("w");
        db.add_edge(u, 'a', v);
        db.add_edge(v, 'a', w);
        let mut q = Ecrpq::new(db.alphabet().clone());
        let x = q.node_var("x");
        let y = q.node_var("y");
        let p = q.path_atom(x, "p", y);
        q.rel_atom(
            "aaa",
            Arc::new(relations::word_relation(&[0, 0, 0], 1)),
            &[p],
        );
        assert!(!eval_product(&db, &prepare(&q)));
        assert!(witness_product(&db, &prepare(&q)).is_none());
    }

    #[test]
    fn equality_relation_on_diamond() {
        // u -a-> v1 -b-> t, u -a-> v2 -c-> t: eq(p1,p2) from same start
        let mut db = GraphDb::new();
        let u = db.add_node("u");
        let v1 = db.add_node("v1");
        let v2 = db.add_node("v2");
        let t = db.add_node("t");
        db.add_edge(u, 'a', v1);
        db.add_edge(v1, 'b', t);
        db.add_edge(u, 'a', v2);
        db.add_edge(v2, 'c', t);
        let m = db.alphabet().len();
        let mut q = Ecrpq::new(db.alphabet().clone());
        let x = q.node_var("x");
        let y = q.node_var("y");
        let z = q.node_var("z");
        let p1 = q.path_atom(x, "p1", y);
        let p2 = q.path_atom(x, "p2", z);
        q.rel_atom("eq", Arc::new(relations::equality(m)), &[p1, p2]);
        q.set_free(&[y, z]);
        let answers = answers_product(&db, &prepare(&q));
        // equal labels: both take 'a' to v1/v2, or identical paths, or empty
        assert!(answers.contains(&vec![v1, v2]));
        assert!(answers.contains(&vec![v1, v1]));
        assert!(answers.contains(&vec![u, u]));
        // (t, t) via two copies of the identical path a·b through v1
        assert!(answers.contains(&vec![t, t]));
        // but mixed endpoints (v1, t) need labels a vs a·? — impossible
        assert!(!answers.contains(&vec![v1, t]));
    }

    #[test]
    fn empty_db() {
        let db = GraphDb::new();
        let mut q = Ecrpq::new(Alphabet::new());
        let x = q.node_var("x");
        let y = q.node_var("y");
        q.path_atom(x, "p", y);
        let p = prepare(&q);
        assert!(!eval_product(&db, &p));
        assert!(answers_product(&db, &p).is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let db = two_chain_db();
        let mut q = example_2_1_query(&db);
        q.set_free(&[]);
        let (res, stats) = eval_product_with_stats(&db, &prepare(&q));
        assert!(res);
        assert!(stats.checks > 0);
        assert!(stats.configurations > 0);
        assert!(stats.frontier_peak > 0);
        assert!(stats.domain_kept + stats.domain_pruned > 0);
    }

    #[test]
    fn answers_with_witnesses_cover_all_answers() {
        let db = two_chain_db();
        let q = example_2_1_query(&db);
        let p = prepare(&q);
        let plain = answers_product(&db, &p);
        let with_wit = answers_with_witnesses(&db, &p);
        let tuples: BTreeSet<Vec<NodeId>> = with_wit.iter().map(|(t, _)| t.clone()).collect();
        assert_eq!(tuples, plain);
        for (tuple, w) in &with_wit {
            // witness consistent with the tuple
            for (i, &NodeVar(v)) in q.free_vars().iter().enumerate() {
                assert_eq!(w.nodes[v as usize], tuple[i]);
            }
            for (pv, path) in &w.paths {
                assert!(path.is_valid_in(&db));
                let (NodeVar(s), NodeVar(d)) = q.endpoints(*pv);
                assert_eq!(path.source(), w.nodes[s as usize]);
                assert_eq!(path.target(), w.nodes[d as usize]);
            }
            // equal lengths per the relation
            assert_eq!(w.paths[0].1.len(), w.paths[1].1.len());
        }
    }

    #[test]
    fn self_loop_star_language() {
        // single vertex with a-loop; query: x -(a*)-> y with |path| = |path'|
        let mut db = GraphDb::new();
        let v = db.add_node("v");
        db.add_edge(v, 'a', v);
        let mut q = Ecrpq::new(db.alphabet().clone());
        let x = q.node_var("x");
        let y = q.node_var("y");
        let p = q.path_atom(x, "p", y);
        q.rel_atom(
            "aaa",
            Arc::new(relations::word_relation(&[0, 0, 0], 1)),
            &[p],
        );
        assert!(eval_product(&db, &prepare(&q)));
        let w = witness_product(&db, &prepare(&q)).unwrap();
        assert_eq!(w.paths[0].1.len(), 3);
    }

    #[test]
    fn free_tuple_expansion_matches_cartesian() {
        // 2 of 3 free vars unassigned over a 3-vertex domain: 9 tuples
        let free = [NodeVar(0), NodeVar(1), NodeVar(2)];
        let assignment = [UNASSIGNED, 1, UNASSIGNED];
        let mut got: Vec<Vec<NodeId>> = Vec::new();
        let mut arena = BumpArena::new();
        for_each_free_tuple(&assignment, &free, 3, &mut arena, |t, _| {
            got.push(t.to_vec());
            false
        });
        assert_eq!(got.len(), 9);
        let set: BTreeSet<Vec<NodeId>> = got.iter().cloned().collect();
        assert_eq!(set.len(), 9);
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert!(set.contains(&vec![a, 1, b]));
            }
        }
        // no unassigned vars: exactly one tuple
        let mut got = Vec::new();
        for_each_free_tuple(&[2, 0], &[NodeVar(0), NodeVar(1)], 3, &mut arena, |t, _| {
            got.push(t.to_vec());
            false
        });
        assert_eq!(got, vec![vec![2, 0]]);
    }

    /// The dense tables must reproduce the NFA transition relation exactly:
    /// per state, the multiset of (row, target) pairs.
    #[test]
    fn dense_tables_reproduce_transitions() {
        let rel = relations::eq_length(2, 2);
        let nfa = rel.nfa().remove_epsilon().trim();
        let dense = DenseTables::build(std::slice::from_ref(&nfa));
        let atom = &dense.atoms[0];
        for q in 0..nfa.num_states() as StateId {
            let mut expect: Vec<(Row, StateId)> = nfa
                .transitions_from(q)
                .iter()
                .map(|(r, t)| (r.clone(), *t))
                .collect();
            let gs = atom.state_offsets[q as usize] as usize
                ..atom.state_offsets[q as usize + 1] as usize;
            let mut got: Vec<(Row, StateId)> = Vec::new();
            for g in &atom.groups[gs] {
                let row = dense.row_of(g.row).to_vec();
                for &t in &atom.targets[g.targets_start as usize..g.targets_end as usize] {
                    got.push((row.clone(), t));
                }
            }
            expect.sort();
            got.sort();
            assert_eq!(got, expect, "state {q}");
        }
    }
}
