//! Rustc-style diagnostic rendering.
//!
//! ```text
//! error[E001]: relation atom `l2` is unsatisfiable: its synchronous language is empty
//!  --> query:1:23
//!   |
//! 1 | x -[p]-> y, p in a*b, p in b+
//!   |                       ^^^^^^^
//!   = note: no path tuple can satisfy this atom, …
//! ```
//!
//! Columns are 1-based *character* offsets within the line (identical to
//! byte offsets for ASCII queries). When the diagnostic has no span
//! (programmatic query) or no source is supplied, only the header and
//! notes render.

use crate::Diagnostic;

/// Snaps `i` back to the nearest char boundary at or before it, clamping
/// to the text length first, so that slicing at the result never panics.
fn floor_char_boundary(s: &str, i: usize) -> usize {
    let mut i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Renders one diagnostic. `source` is the text the query was parsed from
/// (`Ecrpq::source`), if any.
pub fn render_diagnostic(d: &Diagnostic, source: Option<&str>) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity, d.code, d.message);
    let snippet = d.span.and_then(|span| {
        let src = source?;
        let (line, col) = span.line_col(src);
        let text = src.lines().nth(line - 1).unwrap_or("");
        // caret count in characters, robust to spans that overhang the
        // text or land inside a multi-byte character
        let start = floor_char_boundary(src, span.start);
        let end = floor_char_boundary(src, span.end).max(start);
        let span_chars = src[start..end].chars().count();
        Some((span_chars, line, col, text))
    });
    let gutter = snippet.map_or(0, |(_, line, _, _)| line.to_string().len());
    if let Some((span_chars, line, col, text)) = snippet {
        let carets = span_chars
            .min((text.chars().count() + 1).saturating_sub(col))
            .max(1);
        out.push_str(&format!("{:gutter$}--> query:{line}:{col}\n", ""));
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!("{line} | {text}\n"));
        out.push_str(&format!(
            "{:gutter$} | {:col_pad$}{}\n",
            "",
            "",
            "^".repeat(carets),
            col_pad = col - 1
        ));
    }
    for note in &d.notes {
        out.push_str(&format!("{:gutter$} = note: {note}\n", ""));
    }
    if let Some(suggestion) = &d.suggestion {
        out.push_str(&format!(
            "{:gutter$} = help: replace the query with: {suggestion}\n",
            ""
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Code, Diagnostic, Severity};
    use ecrpq_query::Span;

    fn diag(span: Option<Span>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: Code::EmptyLanguage,
            message: "the message".to_string(),
            span,
            notes: vec!["the note".to_string()],
            suggestion: None,
        }
    }

    #[test]
    fn suggestion_renders_as_help_line() {
        let mut d = diag(None);
        d.suggestion = Some("q(x) :- x -[p]-> y, p in a*".to_string());
        let out = super::render_diagnostic(&d, None);
        assert!(
            out.ends_with(" = help: replace the query with: q(x) :- x -[p]-> y, p in a*\n"),
            "{out}"
        );
    }

    #[test]
    fn spanned_rendering_has_carets() {
        let src = "x -[p]-> y, p in a*b";
        let out = super::render_diagnostic(&diag(Some(Span::new(12, 20))), Some(src));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "error[E001]: the message");
        assert_eq!(lines[1], " --> query:1:13");
        assert_eq!(lines[2], "  |");
        assert_eq!(lines[3], "1 | x -[p]-> y, p in a*b");
        assert_eq!(lines[4], "  |             ^^^^^^^^");
        assert_eq!(lines[5], "  = note: the note");
    }

    #[test]
    fn unspanned_rendering_is_header_and_notes() {
        let out = super::render_diagnostic(&diag(None), None);
        assert_eq!(out, "error[E001]: the message\n = note: the note\n");
    }

    /// Multi-byte characters before the span must not inflate the column
    /// or the caret run, and rendering must not panic on byte arithmetic.
    #[test]
    fn non_ascii_prefix_aligns_carets() {
        // "naïve" has a 2-byte 'ï': byte offset of "p in ab" is 16, but
        // its character column is 16 (1-based 16? count: n,a,ï,v,e,_,-,[,p,],-,>,_,y,_ = 15 chars before) → col 16
        let src = "naïve -[p]-> y, p in ab";
        let start = src.find("p in ab").unwrap();
        let out = super::render_diagnostic(
            &diag(Some(Span::new(start, start + "p in ab".len()))),
            Some(src),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1], " --> query:1:17");
        assert_eq!(lines[3], "1 | naïve -[p]-> y, p in ab");
        assert_eq!(lines[4], "  |                 ^^^^^^^");
        // caret column (chars) equals the span text position (chars)
        let caret_at = lines[4].chars().position(|c| c == '^').unwrap();
        let text_byte = lines[3].rfind("p in ab").unwrap();
        let text_at = lines[3][..text_byte].chars().count();
        assert_eq!(caret_at, text_at);
    }

    /// A span inside a multi-byte character or overhanging the text must
    /// clamp instead of panicking.
    #[test]
    fn degenerate_spans_clamp() {
        let src = "xï";
        for (s, e) in [(2, 3), (0, 99), (99, 120), (3, 2)] {
            let out = super::render_diagnostic(&diag(Some(Span::new(s, e))), Some(src));
            assert!(out.contains("error[E001]"), "{out}");
        }
    }

    #[test]
    fn second_line_span() {
        let src = "x -[p]-> y,\n  p in ab";
        let out = super::render_diagnostic(&diag(Some(Span::new(14, 21))), Some(src));
        assert!(out.contains("--> query:2:3"), "{out}");
        assert!(out.contains("2 |   p in ab"), "{out}");
        assert!(out.contains(" |   ^^^^^^^"), "{out}");
    }
}
