//! Rustc-style diagnostic rendering.
//!
//! ```text
//! error[E001]: relation atom `l2` is unsatisfiable: its synchronous language is empty
//!  --> query:1:23
//!   |
//! 1 | x -[p]-> y, p in a*b, p in b+
//!   |                       ^^^^^^^
//!   = note: no path tuple can satisfy this atom, …
//! ```
//!
//! Columns are 1-based byte offsets within the line. When the diagnostic
//! has no span (programmatic query) or no source is supplied, only the
//! header and notes render.

use crate::Diagnostic;

/// Renders one diagnostic. `source` is the text the query was parsed from
/// (`Ecrpq::source`), if any.
pub fn render_diagnostic(d: &Diagnostic, source: Option<&str>) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity, d.code, d.message);
    let snippet = d.span.and_then(|span| {
        let src = source?;
        let (line, col) = span.line_col(src);
        let text = src.lines().nth(line - 1).unwrap_or("");
        Some((span, line, col, text))
    });
    let gutter = snippet.map_or(0, |(_, line, _, _)| line.to_string().len());
    if let Some((span, line, col, text)) = snippet {
        let carets = (span.end - span.start).min(text.len() + 1 - col).max(1);
        out.push_str(&format!("{:gutter$}--> query:{line}:{col}\n", ""));
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!("{line} | {text}\n"));
        out.push_str(&format!(
            "{:gutter$} | {:col_pad$}{}\n",
            "",
            "",
            "^".repeat(carets),
            col_pad = col - 1
        ));
    }
    for note in &d.notes {
        out.push_str(&format!("{:gutter$} = note: {note}\n", ""));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Code, Diagnostic, Severity};
    use ecrpq_query::Span;

    fn diag(span: Option<Span>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: Code::EmptyLanguage,
            message: "the message".to_string(),
            span,
            notes: vec!["the note".to_string()],
        }
    }

    #[test]
    fn spanned_rendering_has_carets() {
        let src = "x -[p]-> y, p in a*b";
        let out = super::render_diagnostic(&diag(Some(Span::new(12, 20))), Some(src));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "error[E001]: the message");
        assert_eq!(lines[1], " --> query:1:13");
        assert_eq!(lines[2], "  |");
        assert_eq!(lines[3], "1 | x -[p]-> y, p in a*b");
        assert_eq!(lines[4], "  |             ^^^^^^^^");
        assert_eq!(lines[5], "  = note: the note");
    }

    #[test]
    fn unspanned_rendering_is_header_and_notes() {
        let out = super::render_diagnostic(&diag(None), None);
        assert_eq!(out, "error[E001]: the message\n = note: the note\n");
    }

    #[test]
    fn second_line_span() {
        let src = "x -[p]-> y,\n  p in ab";
        let out = super::render_diagnostic(&diag(Some(Span::new(14, 21))), Some(src));
        assert!(out.contains("--> query:2:3"), "{out}");
        assert!(out.contains("2 |   p in ab"), "{out}");
        assert!(out.contains(" |   ^^^^^^^"), "{out}");
    }
}
