#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Static analysis of ECRPQs.
//!
//! The paper's headline theorems (3.1 and 3.2) say that three *static*
//! measures of a query — `cc_vertex`, `cc_hedge` and the treewidth of
//! `G^node` — fully determine its evaluation complexity. This crate turns
//! that observation into a compiler-style front-end: [`analyze`] computes
//! the measures of a query's normalized abstraction (reusing
//! `ecrpq-structure`), classifies the query into the complexity regimes of
//! both theorems, and emits [`Diagnostic`]s with severities and source
//! [`Span`]s.
//!
//! *Errors* are conditions under which evaluation is pointless or
//! ill-defined: a relation atom whose synchronous language is empty (the
//! query is unsatisfiable on every database), arity/track mismatches, and
//! out-of-range free variables. The planner (`ecrpq-core`) consults the
//! analysis and short-circuits `evaluate`/`answers` to the empty result on
//! any error, without entering the product search.
//!
//! *Warnings* flag structure that is legal but expensive or suspicious:
//! disconnected queries (answer sets multiply into a cartesian product),
//! `cc_vertex`/`cc_hedge` beyond the configured thresholds (the
//! PSPACE-complete regime of Theorem 3.2(1), with a suggested split),
//! path variables constrained by no relation atom, and relation atoms
//! subsumed by another atom over the same arguments (checked by language
//! inclusion on the synchronous-relation automata).
//!
//! Diagnostics render rustc-style with carets when the query was parsed
//! from text ([`Analysis::render`]).

pub mod acyclic;
pub mod minimize;
mod render;

pub use acyclic::{acyclic_join_tree, cq_hyperedges, gyo_join_tree, JoinTree};
pub use minimize::{fix_source, minimize, minimize_with, AppliedStep, Minimized, StepKind};

use ecrpq_query::{Ecrpq, QueryMeasures, Span};
use ecrpq_structure::{treewidth_exact, treewidth_upper_bound};
use std::fmt;

/// Language-inclusion and intersection checks (W005 subsumption, the
/// minimizer's containment verification, `core::optimize` rewrites) are
/// skipped when either automaton has more states than this — the check
/// complements one side, which determinizes. One shared source of truth so
/// the analyzer and the rewriter can never drift.
pub const INCLUSION_STATE_BUDGET: usize = 48;

/// Inclusion checks are skipped above this relation arity (the row
/// alphabet is `(|A|+1)^arity`). Shared with `core::optimize`.
pub const INCLUSION_ARITY_BUDGET: usize = 3;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The query cannot (or should not) be evaluated.
    Error,
    /// The query is legal but structurally expensive or suspicious.
    Warning,
    /// Informational: a check was skipped or an opportunity exists.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// Stable diagnostic codes, one per check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// A relation atom's synchronous language is empty.
    EmptyLanguage,
    /// A relation atom's argument count differs from its relation's arity.
    ArityMismatch,
    /// A relation atom repeats a path variable.
    RepeatedPathVar,
    /// A relation atom's tracks are over a different alphabet than the
    /// query's.
    TrackAlphabetMismatch,
    /// A free variable is out of range.
    UnknownFreeVar,
    /// The unary (language) atoms on one path variable intersect to the
    /// empty language.
    ContradictoryUnaries,
    /// The query body is disconnected.
    Disconnected,
    /// `cc_vertex` exceeds the configured threshold.
    CcVertexOverThreshold,
    /// `cc_hedge` exceeds the configured threshold.
    CcHedgeOverThreshold,
    /// A path variable is constrained by no relation atom.
    UnconstrainedPathVar,
    /// A relation atom is implied by another atom on the same arguments.
    SubsumedAtom,
    /// The query is equivalent to a rewrite in the PTIME regime (the
    /// minimizer found a verified rewrite sequence).
    MinimizableQuery,
    /// A budget-guarded check was skipped: the report may be incomplete.
    CheckSkippedBudget,
}

impl Code {
    /// The `E…`/`W…`/`N…` code rendered in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::EmptyLanguage => "E001",
            Code::ArityMismatch => "E002",
            Code::RepeatedPathVar => "E003",
            Code::TrackAlphabetMismatch => "E004",
            Code::UnknownFreeVar => "E005",
            Code::ContradictoryUnaries => "E006",
            Code::Disconnected => "W001",
            Code::CcVertexOverThreshold => "W002",
            Code::CcHedgeOverThreshold => "W003",
            Code::UnconstrainedPathVar => "W004",
            Code::SubsumedAtom => "W005",
            Code::MinimizableQuery => "W006",
            Code::CheckSkippedBudget => "N001",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else if self.as_str().starts_with('N') {
            Severity::Note
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The stable code of the originating check.
    pub code: Code,
    /// Primary message.
    pub message: String,
    /// Source span the message points at, when the query was parsed.
    pub span: Option<Span>,
    /// Secondary `note:` lines.
    pub notes: Vec<String>,
    /// Machine-applicable replacement for the spanned source line (the
    /// rewritten query text of W006); rendered as a `help:` line and
    /// applied by `analyze --fix`.
    pub suggestion: Option<String>,
}

/// The combined-complexity classification of a single query under the
/// analyzer's thresholds (the analogue of `planner::CombinedRegime`,
/// recomputed independently so the two can be differential-tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinedClass {
    /// All three measures within thresholds: Theorem 3.2(3), PTIME.
    PolynomialTime,
    /// Components within thresholds, treewidth over: Theorem 3.2(2), NP.
    NpComplete,
    /// `cc_vertex` or `cc_hedge` over threshold: Theorem 3.2(1), PSPACE.
    PspaceComplete,
}

/// The parameterized classification (the analogue of
/// `planner::ParamRegime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamClass {
    /// `cc_vertex` and treewidth within thresholds: Theorem 3.1(3), FPT.
    Fpt,
    /// Treewidth over threshold: Theorem 3.1(2), W\[1\]-complete.
    W1Complete,
    /// `cc_vertex` over threshold: Theorem 3.1(1), XNL-complete.
    XnlComplete,
}

impl fmt::Display for CombinedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombinedClass::PolynomialTime => write!(f, "PTIME"),
            CombinedClass::NpComplete => write!(f, "NP"),
            CombinedClass::PspaceComplete => write!(f, "PSPACE-complete"),
        }
    }
}

impl fmt::Display for ParamClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamClass::Fpt => write!(f, "FPT"),
            ParamClass::W1Complete => write!(f, "W[1]-complete"),
            ParamClass::XnlComplete => write!(f, "XNL-complete"),
        }
    }
}

/// Thresholds and budgets for [`analyze_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// `cc_vertex` above this is treated as unbounded (PSPACE/XNL regime).
    pub cc_vertex_threshold: usize,
    /// `cc_hedge` above this is treated as unbounded (PSPACE regime).
    pub cc_hedge_threshold: usize,
    /// Treewidth of `G^node` above this is treated as unbounded (NP/W\[1\]).
    pub treewidth_threshold: usize,
    /// Language-inclusion (subsumption, W005) checks are skipped when
    /// either automaton has more states than this — the check complements
    /// one side, which determinizes.
    pub inclusion_state_budget: usize,
    /// Subsumption checks are skipped above this relation arity (the row
    /// alphabet is `(|A|+1)^arity`).
    pub inclusion_arity_budget: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            cc_vertex_threshold: 3,
            cc_hedge_threshold: 3,
            treewidth_threshold: 2,
            inclusion_state_budget: INCLUSION_STATE_BUDGET,
            inclusion_arity_budget: INCLUSION_ARITY_BUDGET,
        }
    }
}

/// The result of analyzing one query.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Structural measures of the normalized abstraction.
    pub measures: QueryMeasures,
    /// Combined-complexity regime under the thresholds (Theorem 3.2).
    pub combined: CombinedClass,
    /// Parameterized regime under the thresholds (Theorem 3.1).
    pub param: ParamClass,
    /// Findings, errors first, then by source position.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Whether any error-severity diagnostic was emitted (the planner
    /// short-circuits evaluation in that case).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The note-severity diagnostics (skipped checks, opportunities).
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Note)
    }

    /// Renders every diagnostic rustc-style. With `source` (the text the
    /// query was parsed from), spanned diagnostics show the offending line
    /// with a caret underline; without it only messages and notes print.
    pub fn render(&self, source: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&render_diagnostic(d, source));
            out.push('\n');
        }
        out
    }

    /// One-line measures + regimes + counts summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "cc_vertex={} cc_hedge={} tw={} | combined: {} | param: {} | {} error(s), {} warning(s)",
            self.measures.cc_vertex,
            self.measures.cc_hedge,
            self.measures.treewidth,
            self.combined,
            self.param,
            self.errors().count(),
            self.warnings().count(),
        );
        let notes = self.notes().count();
        if notes > 0 {
            s.push_str(&format!(", {notes} note(s)"));
        }
        s
    }
}

/// Analyzes `query` under the default [`AnalyzerConfig`].
pub fn analyze(query: &Ecrpq) -> Analysis {
    analyze_with(query, &AnalyzerConfig::default())
}

/// Analyzes `query`: computes measures, classifies regimes, runs every
/// diagnostic check.
pub fn analyze_with(query: &Ecrpq, cfg: &AnalyzerConfig) -> Analysis {
    let mut diags: Vec<Diagnostic> = Vec::new();

    check_validation(query, &mut diags);
    check_empty_languages(query, &mut diags);
    check_contradictory_unaries(query, cfg, &mut diags);
    let had_errors = !diags.is_empty();

    // Measures of the normalized abstraction — the same computation as
    // `Ecrpq::measures`, spelled out because the component structure is
    // also needed for the threshold warnings below.
    let normalized = query.normalized();
    let abstraction = normalized.abstraction();
    let node = abstraction.node_graph();
    let treewidth = if node.num_vertices() <= 64 {
        treewidth_exact(&node).0
    } else {
        treewidth_upper_bound(&node).0
    };
    let measures = QueryMeasures {
        cc_vertex: abstraction.cc_vertex(),
        cc_hedge: abstraction.cc_hedge(),
        treewidth,
    };

    check_disconnected(query, &node, &mut diags);
    check_thresholds(&normalized, &abstraction, &measures, cfg, &mut diags);
    check_unconstrained_paths(query, &mut diags);
    if !had_errors {
        check_subsumption(query, cfg, &mut diags);
        check_minimizable(query, cfg, &mut diags);
    }

    diags.sort_by_key(|d| (d.severity, d.span.map_or(usize::MAX, |s| s.start), d.code));

    Analysis {
        measures,
        combined: classify_combined(&measures, cfg),
        param: classify_param(&measures, cfg),
        diagnostics: diags,
    }
}

/// Theorem 3.2, with "bounded" read as "within the configured threshold".
pub fn classify_combined(m: &QueryMeasures, cfg: &AnalyzerConfig) -> CombinedClass {
    if m.cc_vertex > cfg.cc_vertex_threshold || m.cc_hedge > cfg.cc_hedge_threshold {
        CombinedClass::PspaceComplete
    } else if m.treewidth > cfg.treewidth_threshold {
        CombinedClass::NpComplete
    } else {
        CombinedClass::PolynomialTime
    }
}

/// Theorem 3.1, with "bounded" read as "within the configured threshold".
pub fn classify_param(m: &QueryMeasures, cfg: &AnalyzerConfig) -> ParamClass {
    if m.cc_vertex > cfg.cc_vertex_threshold {
        ParamClass::XnlComplete
    } else if m.treewidth > cfg.treewidth_threshold {
        ParamClass::W1Complete
    } else {
        ParamClass::Fpt
    }
}

fn push(
    diags: &mut Vec<Diagnostic>,
    code: Code,
    span: Option<Span>,
    message: String,
    notes: Vec<String>,
) {
    diags.push(Diagnostic {
        severity: code.severity(),
        code,
        message,
        span,
        notes,
        suggestion: None,
    });
}

/// E002–E005: the well-formedness conditions of §2, with spans.
fn check_validation(query: &Ecrpq, diags: &mut Vec<Diagnostic>) {
    let num_symbols = query.alphabet().len();
    for atom in query.rel_atoms() {
        if atom.args.len() != atom.rel.arity() {
            push(
                diags,
                Code::ArityMismatch,
                atom.span,
                format!(
                    "relation atom `{}` has {} argument(s) but relation arity {}",
                    atom.name,
                    atom.args.len(),
                    atom.rel.arity()
                ),
                vec![],
            );
        }
        let mut sorted = atom.args.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != atom.args.len() {
            push(
                diags,
                Code::RepeatedPathVar,
                atom.span,
                format!(
                    "relation atom `{}` repeats a path variable; arguments must be pairwise distinct (§2)",
                    atom.name
                ),
                vec![],
            );
        }
        if atom.rel.num_symbols() != num_symbols {
            push(
                diags,
                Code::TrackAlphabetMismatch,
                atom.span,
                format!(
                    "relation atom `{}` tracks words over {} symbol(s) but the query alphabet has {}",
                    atom.name,
                    atom.rel.num_symbols(),
                    num_symbols
                ),
                vec!["the relation was built over a different alphabet".to_string()],
            );
        }
    }
    for (i, &v) in query.free_vars().iter().enumerate() {
        if v.0 as usize >= query.num_node_vars() {
            push(
                diags,
                Code::UnknownFreeVar,
                query.free_span(i),
                format!("free variable #{} does not occur in the body", v.0),
                vec![],
            );
        }
    }
}

/// E001: an atom with an empty synchronous language makes the whole query
/// unsatisfiable — this is an automaton emptiness check per atom.
fn check_empty_languages(query: &Ecrpq, diags: &mut Vec<Diagnostic>) {
    for atom in query.rel_atoms() {
        if atom.rel.is_empty() {
            push(
                diags,
                Code::EmptyLanguage,
                atom.span,
                format!(
                    "relation atom `{}` is unsatisfiable: its synchronous language is empty",
                    atom.name
                ),
                vec![
                    "no path tuple can satisfy this atom, so the query has no answers on any \
                     database; evaluation short-circuits to the empty result"
                        .to_string(),
                ],
            );
        }
    }
}

/// E006: several unary (language) atoms on one path variable whose
/// intersection is empty — each atom alone is satisfiable, together they
/// contradict. Mirrors the unary-fusion rewrite of `ecrpq-core::optimize`,
/// but reports *which* constraints clash instead of silently folding the
/// query to `false`. Budget-guarded: intersection states multiply, so the
/// check stops once the product automaton outgrows the inclusion budget.
fn check_contradictory_unaries(query: &Ecrpq, cfg: &AnalyzerConfig, diags: &mut Vec<Diagnostic>) {
    let atoms = query.rel_atoms();
    let mut unary_of: Vec<Vec<usize>> = vec![Vec::new(); query.num_path_vars()];
    for (i, atom) in atoms.iter().enumerate() {
        if atom.rel.arity() == 1 && atom.args.len() == 1 && !atom.rel.is_empty() {
            unary_of[atom.args[0].0 as usize].push(i);
        }
    }
    let state_cap = cfg.inclusion_state_budget * cfg.inclusion_state_budget;
    let mut skipped_vars: Vec<String> = Vec::new();
    for (p, ids) in unary_of.iter().enumerate() {
        if ids.len() < 2 {
            continue;
        }
        let mut fused = atoms[ids[0]].rel.as_ref().clone();
        let mut used = vec![ids[0]];
        for &i in &ids[1..] {
            if fused.num_states() * atoms[i].rel.num_states() > state_cap {
                // too large to fuse further; stay sound, check what we
                // have — but say so, a clean report must be
                // distinguishable from an unchecked one
                skipped_vars.push(query.path_name(ecrpq_query::PathVar(p as u32)).to_string());
                break;
            }
            fused = fused.intersect(&atoms[i].rel);
            used.push(i);
            if fused.is_empty() {
                let names: Vec<String> = used.iter().map(|&k| atoms[k].name.clone()).collect();
                push(
                    diags,
                    Code::ContradictoryUnaries,
                    atoms[i].span.or(atoms[ids[0]].span),
                    format!(
                        "language constraints on path variable `{}` are contradictory: \
                         {} intersect to the empty language",
                        query.path_name(ecrpq_query::PathVar(p as u32)),
                        names
                            .iter()
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(" ∩ ")
                    ),
                    vec![
                        "no word satisfies every constraint at once, so the query has no \
                         answers on any database"
                            .to_string(),
                    ],
                );
                break;
            }
        }
    }
    for name in skipped_vars {
        push(
            diags,
            Code::CheckSkippedBudget,
            None,
            format!("unary-contradiction check on path variable `{name}` skipped: budget exceeded"),
            vec![format!(
                "the intersection automaton outgrew the {state_cap}-state cap, so later \
                 constraints on `{name}` were not fused; the absence of E006 here is not a \
                 proof of satisfiability"
            )],
        );
    }
}

/// W001: a disconnected body multiplies per-component answer sets into a
/// cartesian product.
fn check_disconnected(query: &Ecrpq, node: &ecrpq_structure::Graph, diags: &mut Vec<Diagnostic>) {
    let comps = node.components();
    if comps.len() > 1 {
        push(
            diags,
            Code::Disconnected,
            None,
            format!(
                "query body is disconnected: {} independent components",
                comps.len()
            ),
            vec![format!(
                "the answer set is the cartesian product of the components' answers — up to \
                 |V|^{} tuples; consider splitting into {} separate queries",
                query.free_vars().len().max(1),
                comps.len()
            )],
        );
    }
}

/// W002/W003: measures beyond the thresholds put the query class in the
/// PSPACE-complete regime of Theorem 3.2(1).
fn check_thresholds(
    normalized: &Ecrpq,
    abstraction: &ecrpq_structure::TwoLevelGraph,
    measures: &QueryMeasures,
    cfg: &AnalyzerConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if measures.cc_vertex <= cfg.cc_vertex_threshold && measures.cc_hedge <= cfg.cc_hedge_threshold
    {
        return;
    }
    let comps = abstraction.rel_components();
    for (ci, edge_list) in comps.edges.iter().enumerate() {
        let hedges = &comps.hedges[ci];
        let atom_name = |h: usize| normalized.rel_atoms()[h].name.clone();
        let span = hedges.iter().find_map(|&h| normalized.rel_atoms()[h].span);
        if edge_list.len() > cfg.cc_vertex_threshold {
            let mut notes = vec![format!(
                "classes with cc_vertex > {} are PSPACE-complete to evaluate (Theorem 3.2(1)); \
                 the merged relation automaton for this component spans {} tracks",
                cfg.cc_vertex_threshold,
                edge_list.len()
            )];
            notes.extend(suggest_split(
                normalized,
                abstraction,
                hedges,
                cfg.cc_vertex_threshold,
            ));
            push(
                diags,
                Code::CcVertexOverThreshold,
                span,
                format!(
                    "relation component {{{}}} spans {} path variables (cc_vertex threshold {})",
                    hedges
                        .iter()
                        .map(|&h| atom_name(h))
                        .collect::<Vec<_>>()
                        .join(", "),
                    edge_list.len(),
                    cfg.cc_vertex_threshold
                ),
                notes,
            );
        }
        if hedges.len() > cfg.cc_hedge_threshold {
            push(
                diags,
                Code::CcHedgeOverThreshold,
                span,
                format!(
                    "relation component has {} atoms (cc_hedge threshold {})",
                    hedges.len(),
                    cfg.cc_hedge_threshold
                ),
                vec![format!(
                    "the Lemma 4.1 merge multiplies all {} automata into one; check whether some \
                     atoms are redundant (W005) before evaluating",
                    hedges.len()
                )],
            );
        }
    }
}

/// A greedy regrouping of a component's atoms into groups each spanning at
/// most `limit` path variables — the "suggested split" of W002. Returns no
/// note when a single atom already exceeds the limit (no split can help).
fn suggest_split(
    normalized: &Ecrpq,
    abstraction: &ecrpq_structure::TwoLevelGraph,
    hedges: &[usize],
    limit: usize,
) -> Option<String> {
    if hedges
        .iter()
        .any(|&h| abstraction.hyperedge(h).len() > limit)
    {
        let worst = hedges
            .iter()
            .max_by_key(|&&h| abstraction.hyperedge(h).len())?;
        return Some(format!(
            "no split helps: atom `{}` alone spans {} path variables",
            normalized.rel_atoms()[*worst].name,
            abstraction.hyperedge(*worst).len()
        ));
    }
    let mut groups: Vec<(Vec<usize>, std::collections::BTreeSet<usize>)> = Vec::new();
    for &h in hedges {
        let members: std::collections::BTreeSet<usize> =
            abstraction.hyperedge(h).iter().copied().collect();
        match groups
            .iter_mut()
            .find(|(_, vars)| vars.union(&members).count() <= limit)
        {
            Some((hs, vars)) => {
                hs.push(h);
                vars.extend(members);
            }
            None => groups.push((vec![h], members)),
        }
    }
    if groups.len() < 2 {
        return None;
    }
    let rendered: Vec<String> = groups
        .iter()
        .map(|(hs, _)| {
            format!(
                "{{{}}}",
                hs.iter()
                    .map(|&h| normalized.rel_atoms()[h].name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    Some(format!(
        "suggested split (each group stays within cc_vertex ≤ {limit}): {}",
        rendered.join(" | ")
    ))
}

/// W004: a path variable no relation atom mentions — it matches arbitrary
/// paths, which is usually an authoring mistake.
fn check_unconstrained_paths(query: &Ecrpq, diags: &mut Vec<Diagnostic>) {
    let mut covered = vec![false; query.num_path_vars()];
    for atom in query.rel_atoms() {
        for &p in &atom.args {
            covered[p.0 as usize] = true;
        }
    }
    for (p, src, dst) in query.path_atoms() {
        if !covered[p.0 as usize] {
            push(
                diags,
                Code::UnconstrainedPathVar,
                query.path_span(p),
                format!(
                    "path variable `{}` is not constrained by any relation atom",
                    query.path_name(p)
                ),
                vec![format!(
                    "`{}` matches every path from `{}` to `{}`; normalization adds a universal \
                     atom (π ∈ A*) — add `{} in REGEX` if a language constraint was intended",
                    query.path_name(p),
                    query.node_name(src),
                    query.node_name(dst),
                    query.path_name(p)
                )],
            );
        }
    }
}

/// W005: atom `b` is redundant when another atom `a` over the same
/// arguments has `L(a) ⊆ L(b)` — checked by language inclusion on the
/// synchronous-relation automata, under the configured budgets.
fn check_subsumption(query: &Ecrpq, cfg: &AnalyzerConfig, diags: &mut Vec<Diagnostic>) {
    let atoms = query.rel_atoms();
    let within = |i: usize| {
        atoms[i].rel.num_states() <= cfg.inclusion_state_budget
            && atoms[i].rel.arity() <= cfg.inclusion_arity_budget
    };
    let mut flagged = vec![false; atoms.len()];
    let mut skipped_pairs = 0usize;
    for i in 0..atoms.len() {
        for j in (i + 1)..atoms.len() {
            if atoms[i].args != atoms[j].args {
                continue;
            }
            if !within(i) || !within(j) {
                skipped_pairs += 1;
                continue;
            }
            // the atom with the *larger* language is the redundant one
            let redundant = if !flagged[j] && atoms[i].rel.is_subset_of(&atoms[j].rel) {
                Some((j, i))
            } else if !flagged[i] && atoms[j].rel.is_subset_of(&atoms[i].rel) {
                Some((i, j))
            } else {
                None
            };
            if let Some((weak, strong)) = redundant {
                flagged[weak] = true;
                push(
                    diags,
                    Code::SubsumedAtom,
                    atoms[weak].span,
                    format!(
                        "relation atom `{}` is subsumed by `{}` on the same arguments",
                        atoms[weak].name, atoms[strong].name
                    ),
                    vec![format!(
                        "every path tuple satisfying `{}` satisfies `{}`, so the atom adds no \
                         constraint and only grows the merged automaton; remove it",
                        atoms[strong].name, atoms[weak].name
                    )],
                );
            }
        }
    }
    if skipped_pairs > 0 {
        push(
            diags,
            Code::CheckSkippedBudget,
            None,
            format!("subsumption check skipped for {skipped_pairs} atom pair(s): budget exceeded"),
            vec![format!(
                "language inclusion was not decided for pairs whose automata exceed {} states \
                 or arity {}; the absence of W005 on them is not a proof of independence",
                cfg.inclusion_state_budget, cfg.inclusion_arity_budget
            )],
        );
    }
}

/// W006: the bounded best-first rewrite search found a verified equivalent
/// query in the PTIME regime — report it, with the rewritten text as a
/// machine-applicable suggestion when the query unparses. Also surfaces
/// N001 when the search itself skipped rewrite checks on budget.
fn check_minimizable(query: &Ecrpq, cfg: &AnalyzerConfig, diags: &mut Vec<Diagnostic>) {
    let m = minimize::minimize_with(query, cfg);
    if m.after_class == CombinedClass::PolynomialTime
        && m.before_class != CombinedClass::PolynomialTime
    {
        let mut notes: Vec<String> = m
            .steps
            .iter()
            .map(|s| format!("{}: {}", s.kind, s.detail))
            .collect();
        notes.push(format!(
            "all {} rewrite step(s) verified by two-way language inclusion; measures drop \
             cc_vertex {}→{}, cc_hedge {}→{}, tw {}→{}",
            m.steps.len(),
            m.before.cc_vertex,
            m.after.cc_vertex,
            m.before.cc_hedge,
            m.after.cc_hedge,
            m.before.treewidth,
            m.after.treewidth,
        ));
        let suggestion = ecrpq_query::unparse(&m.query, cfg.inclusion_state_budget);
        if suggestion.is_none() {
            notes.push(format!("equivalent PTIME-regime form: {}", m.query));
        }
        let span = m.steps.iter().find_map(|s| s.span);
        diags.push(Diagnostic {
            severity: Code::MinimizableQuery.severity(),
            code: Code::MinimizableQuery,
            message: format!(
                "query is equivalent to a PTIME-regime rewrite ({} → {})",
                m.before_class, m.after_class
            ),
            span,
            notes,
            suggestion,
        });
    }
    if m.skipped {
        push(
            diags,
            Code::CheckSkippedBudget,
            None,
            "regime-minimization search skipped: query too large for the rewrite budget"
                .to_string(),
            vec![
                "the best-first rewrite search only runs on queries within its size bound; a \
                 cheaper equivalent form may exist"
                    .to_string(),
            ],
        );
    } else if m.budget_skips > 0 {
        push(
            diags,
            Code::CheckSkippedBudget,
            None,
            format!(
                "{} rewrite check(s) skipped during regime minimization: budget exceeded",
                m.budget_skips
            ),
            vec![
                "containment verification was not decided for some candidate rewrites, so \
                 they were rejected conservatively; a cheaper equivalent form may exist"
                    .to_string(),
            ],
        );
    }
}

pub use render::render_diagnostic;

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::{relations, Alphabet};
    use ecrpq_query::{parse_query, RelationRegistry};
    use std::sync::Arc;

    fn parsed(src: &str) -> Ecrpq {
        let mut alphabet = Alphabet::ascii_lower(2);
        parse_query(src, &mut alphabet, &RelationRegistry::new()).unwrap()
    }

    fn codes(a: &Analysis) -> Vec<Code> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let a = analyze(&parsed("q(x) :- x -(a*b)-> y"));
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.combined, CombinedClass::PolynomialTime);
        assert_eq!(a.param, ParamClass::Fpt);
    }

    #[test]
    fn empty_language_is_an_error_with_span() {
        // a+ ∩ b+ on the same path variable: the fused language is empty,
        // but each atom alone is non-empty — build the empty one directly
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let p = q.path_atom(x, "p", y);
        let empty = relations::universal(1, 2).complement();
        q.rel_atom_spanned("never", Arc::new(empty), &[p], Some(Span::new(3, 10)));
        let a = analyze(&q);
        assert!(a.has_errors());
        assert_eq!(a.diagnostics[0].code, Code::EmptyLanguage);
        assert_eq!(a.diagnostics[0].span, Some(Span::new(3, 10)));
    }

    #[test]
    fn validation_errors_map_to_codes() {
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let p = q.path_atom(x, "p", y);
        q.rel_atom("eq", Arc::new(relations::equality(2)), &[p]);
        assert!(codes(&analyze(&q)).contains(&Code::ArityMismatch));

        let mut q2 = Ecrpq::new(Alphabet::ascii_lower(3));
        let x = q2.node_var("x");
        let y = q2.node_var("y");
        let p = q2.path_atom(x, "p", y);
        let r = q2.path_atom(y, "r", x);
        q2.rel_atom("eq", Arc::new(relations::equality(2)), &[p, r]);
        assert!(codes(&analyze(&q2)).contains(&Code::TrackAlphabetMismatch));

        let mut q3 = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q3.node_var("x");
        let y = q3.node_var("y");
        q3.path_atom(x, "p", y);
        q3.set_free(&[ecrpq_query::NodeVar(7)]);
        assert!(codes(&analyze(&q3)).contains(&Code::UnknownFreeVar));
    }

    #[test]
    fn contradictory_unaries_are_an_error() {
        let src = "x -[p]-> y, p in a+, p in b+";
        let a = analyze(&parsed(src));
        assert!(a.has_errors());
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ContradictoryUnaries)
            .expect("E006 expected");
        let sp = d.span.unwrap();
        assert_eq!(&src[sp.start..sp.end], "p in b+");
        assert!(d.message.contains("contradictory"), "{}", d.message);
        // consistent constraints on one variable stay silent
        let ok = analyze(&parsed("x -[p]-> y, p in a+, p in a*"));
        assert!(!ok.has_errors());
    }

    #[test]
    fn disconnected_body_warns() {
        let a = analyze(&parsed("x -(a)-> y, z -(b)-> w"));
        assert!(codes(&a).contains(&Code::Disconnected));
        assert!(!a.has_errors());
    }

    #[test]
    fn unconstrained_path_var_warns_at_its_atom() {
        let src = "x -[p]-> y, y -[r]-> z, r in a*";
        let q = parsed(src);
        let a = analyze(&q);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UnconstrainedPathVar)
            .expect("W004 expected");
        let sp = d.span.unwrap();
        assert_eq!(&src[sp.start..sp.end], "x -[p]-> y");
    }

    #[test]
    fn cc_vertex_over_threshold_warns_with_split() {
        // 5 path vars chained pairwise into one component (threshold 3)
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let vars: Vec<_> = (0..6).map(|i| q.node_var(&format!("x{i}"))).collect();
        let ps: Vec<_> = (0..5)
            .map(|i| q.path_atom(vars[i], &format!("p{i}"), vars[i + 1]))
            .collect();
        let eq = Arc::new(relations::eq_length(2, 2));
        for i in 0..4 {
            q.rel_atom(&format!("e{i}"), eq.clone(), &[ps[i], ps[i + 1]]);
        }
        let a = analyze(&q);
        assert_eq!(a.measures.cc_vertex, 5);
        assert_eq!(a.combined, CombinedClass::PspaceComplete);
        assert_eq!(a.param, ParamClass::XnlComplete);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CcVertexOverThreshold)
            .expect("W002 expected");
        assert!(
            d.notes.iter().any(|n| n.contains("suggested split")),
            "{:?}",
            d.notes
        );
        // cc_hedge = 4 also exceeds its threshold of 3
        assert!(codes(&a).contains(&Code::CcHedgeOverThreshold));
    }

    #[test]
    fn oversized_single_atom_has_no_split() {
        let mut q = Ecrpq::new(Alphabet::ascii_lower(1));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let ps: Vec<_> = (0..4)
            .map(|i| q.path_atom(x, &format!("p{i}"), y))
            .collect();
        q.rel_atom("big", Arc::new(relations::eq_length(4, 1)), &ps);
        let a = analyze(&q);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CcVertexOverThreshold)
            .expect("W002 expected");
        assert!(
            d.notes.iter().any(|n| n.contains("no split helps")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn subsumed_atom_warns_on_the_weaker_atom() {
        // a+ ⊆ (a|b)*: the (a|b)* atom adds no constraint
        let src = "x -[p]-> y, p in a+, p in (a|b)*";
        let a = analyze(&parsed(src));
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SubsumedAtom)
            .expect("W005 expected");
        let sp = d.span.unwrap();
        assert_eq!(&src[sp.start..sp.end], "p in (a|b)*");
    }

    #[test]
    fn equivalent_atoms_warn_once() {
        let a = analyze(&parsed("x -[p]-> y, p in a+, p in aa*"));
        let n = codes(&a)
            .iter()
            .filter(|&&c| c == Code::SubsumedAtom)
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn classification_matches_thresholds() {
        let cfg = AnalyzerConfig::default();
        let m = |v, h, t| QueryMeasures {
            cc_vertex: v,
            cc_hedge: h,
            treewidth: t,
        };
        assert_eq!(
            classify_combined(&m(1, 1, 1), &cfg),
            CombinedClass::PolynomialTime
        );
        assert_eq!(
            classify_combined(&m(1, 1, 5), &cfg),
            CombinedClass::NpComplete
        );
        assert_eq!(
            classify_combined(&m(9, 1, 1), &cfg),
            CombinedClass::PspaceComplete
        );
        assert_eq!(
            classify_combined(&m(1, 9, 1), &cfg),
            CombinedClass::PspaceComplete
        );
        assert_eq!(classify_param(&m(1, 9, 1), &cfg), ParamClass::Fpt);
        assert_eq!(classify_param(&m(1, 1, 5), &cfg), ParamClass::W1Complete);
        assert_eq!(classify_param(&m(9, 1, 5), &cfg), ParamClass::XnlComplete);
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let p = q.path_atom(x, "p", y); // unconstrained → W004
        let z = q.node_var("z");
        let w = q.node_var("w");
        let r = q.path_atom(z, "r", w); // second component → W001
        let empty = relations::universal(1, 2).complement();
        q.rel_atom("never", Arc::new(empty), &[r]);
        let _ = p;
        let a = analyze(&q);
        assert_eq!(a.diagnostics[0].severity, Severity::Error);
        assert!(a.diagnostics.len() >= 3);
        for pair in a.diagnostics.windows(2) {
            assert!(pair[0].severity <= pair[1].severity);
        }
    }

    #[test]
    fn summary_mentions_measures_and_regimes() {
        let s = analyze(&parsed("q(x) :- x -(a*)-> y")).summary();
        assert!(s.contains("cc_vertex=1"), "{s}");
        assert!(s.contains("PTIME"), "{s}");
        assert!(s.contains("FPT"), "{s}");
    }
}
