//! Semantic regime minimization: a bounded best-first search over
//! *verified* equivalence-preserving rewrites, aimed at moving a query
//! into a cheaper complexity regime of Theorem 3.2.
//!
//! The paper's tractability frontier is a property of the query *text*:
//! `cc_vertex`, `cc_hedge` and the treewidth of `G^node` decide the
//! regime, but only up to equivalence — an expensive-looking query may
//! have an equivalent form with smaller measures (Figueira–Morvan,
//! arXiv:2212.01679, prove such gaps are real for CRPQs). This module
//! searches for one with a small catalogue of rewrite steps:
//!
//! * **merge-parallel / drop-subsumed** — two relation atoms on the same
//!   argument list conjoin to one language; keep the stronger atom or
//!   their intersection (lowers `cc_hedge` / atom count);
//! * **drop-universal** — an atom whose language is the universal
//!   relation constrains nothing (normalization re-adds universal unary
//!   atoms, so dropping is free);
//! * **contract-equality** — an equality atom `eq(π, π′)` makes the two
//!   paths word-interchangeable; when `π′` is otherwise fresh, fold it
//!   (and its private endpoints) into `π` (lowers `cc_vertex` and, by
//!   vertex identification, never raises `tw`);
//! * **elide-reachability** — a path atom whose only constraints are
//!   universal and whose endpoints stay connected through the remaining
//!   atoms is implied by path concatenation; drop it (lowers `tw`).
//!
//! **Verification obligation**: every candidate is admitted only after a
//! two-way containment check (`verify_equiv`, language inclusion in
//! both directions) on the languages the step equates, under the shared
//! inclusion budgets — an unverifiable candidate is *rejected*, never
//! trusted, so the search is sound by construction. The search itself is
//! a best-first expansion ordered by
//! `(regime, cc_vertex, cc_hedge, tw, atoms, paths)` with a fixed
//! expansion bound; every step strictly shrinks the query, so it
//! terminates regardless.

use crate::{classify_combined, AnalyzerConfig, CombinedClass};
use ecrpq_automata::{relations, SyncRel};
use ecrpq_query::{Ecrpq, NodeVar, PathVar, QueryMeasures, Span};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Queries with more than this many atoms + path variables skip the
/// search (each expansion measures treewidth and runs automata checks).
const SIZE_BOUND: usize = 20;

/// Maximum number of search-tree expansions.
const MAX_EXPANSIONS: usize = 24;

/// The rewrite step catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Two same-argument atoms replaced by their intersection.
    MergeParallel,
    /// A same-argument atom dropped because another atom implies it.
    DropSubsumed,
    /// An atom dropped because its language is universal.
    DropUniversal,
    /// An equality atom contracted: one path folded into the other.
    ContractEquality,
    /// An unconstrained path atom dropped: reachability is implied.
    ElideReachability,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepKind::MergeParallel => write!(f, "merge-parallel"),
            StepKind::DropSubsumed => write!(f, "drop-subsumed"),
            StepKind::DropUniversal => write!(f, "drop-universal"),
            StepKind::ContractEquality => write!(f, "contract-equality"),
            StepKind::ElideReachability => write!(f, "elide-reachability"),
        }
    }
}

/// One applied, verified rewrite step.
#[derive(Debug, Clone)]
pub struct AppliedStep {
    /// Which rule fired.
    pub kind: StepKind,
    /// Human-readable account of what changed.
    pub detail: String,
    /// Span in the *original* source the step anchors to.
    pub span: Option<Span>,
}

/// The result of a minimization search.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The best equivalent query found (the input itself when no step
    /// applied).
    pub query: Ecrpq,
    /// The verified rewrite sequence leading to [`Minimized::query`].
    pub steps: Vec<AppliedStep>,
    /// Measures of the input query.
    pub before: QueryMeasures,
    /// Measures of the rewritten query.
    pub after: QueryMeasures,
    /// Regime of the input query.
    pub before_class: CombinedClass,
    /// Regime of the rewritten query.
    pub after_class: CombinedClass,
    /// Containment checks refused on budget (candidates rejected
    /// conservatively; a cheaper form may exist).
    pub budget_skips: usize,
    /// Containment checks that refuted a candidate.
    pub rejected: usize,
    /// Whether the whole search was skipped (query over `SIZE_BOUND`).
    pub skipped: bool,
}

/// Outcome of a two-way containment check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Inclusion holds in both directions: the languages are equal.
    Verified,
    /// Inclusion fails in some direction.
    Refuted,
    /// The automata exceed the inclusion budgets; nothing was decided.
    Budget,
}

#[derive(Debug, Default)]
struct Stats {
    budget_skips: usize,
    rejected: usize,
}

/// The containment-verification chokepoint: language equality by
/// inclusion in both directions, refusing (never trusting) checks whose
/// automata exceed the shared budgets.
fn verify_equiv(a: &SyncRel, b: &SyncRel, cfg: &AnalyzerConfig) -> Verdict {
    if a.arity() != b.arity() || a.num_symbols() != b.num_symbols() {
        return Verdict::Refuted;
    }
    if a.num_states() > cfg.inclusion_state_budget
        || b.num_states() > cfg.inclusion_state_budget
        || a.arity() > cfg.inclusion_arity_budget
    {
        return Verdict::Budget;
    }
    if a.is_subset_of(b) && b.is_subset_of(a) {
        Verdict::Verified
    } else {
        Verdict::Refuted
    }
}

/// Minimizes `q` under the default [`AnalyzerConfig`].
pub fn minimize(q: &Ecrpq) -> Minimized {
    minimize_with(q, &AnalyzerConfig::default())
}

/// Bounded best-first search for a verified equivalent of `q` with
/// smaller `(regime, cc_vertex, cc_hedge, tw, atoms, paths)`.
pub fn minimize_with(q: &Ecrpq, cfg: &AnalyzerConfig) -> Minimized {
    let before = q.measures();
    let before_class = classify_combined(&before, cfg);
    let unchanged = |skipped: bool| Minimized {
        query: q.clone(),
        steps: Vec::new(),
        before,
        after: before,
        before_class,
        after_class: before_class,
        budget_skips: 0,
        rejected: 0,
        skipped,
    };
    if q.rel_atoms().len() + q.num_path_vars() > SIZE_BOUND {
        return unchanged(true);
    }
    if q.validate().is_err() {
        return unchanged(false);
    }

    let mut stats = Stats::default();
    let mut nodes: Vec<(Ecrpq, Vec<AppliedStep>)> = vec![(q.clone(), Vec::new())];
    let s0 = score(q, cfg);
    let mut heap: BinaryHeap<Reverse<(Score, usize)>> = BinaryHeap::new();
    heap.push(Reverse((s0, 0)));
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(dedup_key(q));
    let mut best = 0usize;
    let mut best_score = s0;
    let mut expansions = 0usize;
    while let Some(Reverse((_, idx))) = heap.pop() {
        if expansions >= MAX_EXPANSIONS {
            break;
        }
        expansions += 1;
        let (cur, cur_steps) = nodes[idx].clone();
        for (step, q2) in candidates(&cur, cfg, &mut stats) {
            if !seen.insert(dedup_key(&q2)) {
                continue;
            }
            let s2 = score(&q2, cfg);
            let mut steps2 = cur_steps.clone();
            steps2.push(step);
            let id = nodes.len();
            nodes.push((q2, steps2));
            heap.push(Reverse((s2, id)));
            if s2 < best_score {
                best_score = s2;
                best = id;
            }
        }
    }

    let (query, steps) = nodes.swap_remove(best);
    let after = query.measures();
    let after_class = classify_combined(&after, cfg);
    Minimized {
        query,
        steps,
        before,
        after,
        before_class,
        after_class,
        budget_skips: stats.budget_skips,
        rejected: stats.rejected,
        skipped: false,
    }
}

/// The search order: regime first (the point of the exercise), then the
/// paper's measures, then sheer size.
type Score = (u8, usize, usize, usize, usize, usize);

fn score(q: &Ecrpq, cfg: &AnalyzerConfig) -> Score {
    let m = q.measures();
    let rank = match classify_combined(&m, cfg) {
        CombinedClass::PolynomialTime => 0u8,
        CombinedClass::NpComplete => 1,
        CombinedClass::PspaceComplete => 2,
    };
    (
        rank,
        m.cc_vertex,
        m.cc_hedge,
        m.treewidth,
        q.rel_atoms().len(),
        q.num_path_vars(),
    )
}

/// Structural identity of a search node: the printed query plus per-atom
/// automaton sizes (two merges of different relations can print alike).
fn dedup_key(q: &Ecrpq) -> String {
    let sizes: Vec<String> = q
        .rel_atoms()
        .iter()
        .map(|a| a.rel.num_states().to_string())
        .collect();
    format!("{q}|{}", sizes.join(","))
}

/// What happens to each relation atom in a rebuilt candidate.
#[derive(Debug, Clone)]
enum RelEdit {
    Keep,
    Drop,
    Replace(String, Arc<SyncRel>),
}

/// All verified single-step successors of `q`. Every push into
/// `candidates` is dominated by a `verify_equiv` call on the languages
/// the step equates — xtask lint rule 9 audits exactly this property.
fn candidates(q: &Ecrpq, cfg: &AnalyzerConfig, stats: &mut Stats) -> Vec<(AppliedStep, Ecrpq)> {
    let mut candidates: Vec<(AppliedStep, Ecrpq)> = Vec::new();
    let atoms = q.rel_atoms();
    let n = q.alphabet().len();
    let keep_all = || vec![RelEdit::Keep; atoms.len()];

    // merge-parallel / drop-subsumed: same-argument atom pairs conjoin.
    for i in 0..atoms.len() {
        for j in (i + 1)..atoms.len() {
            if atoms[i].args != atoms[j].args {
                continue;
            }
            let (ri, rj) = (&atoms[i].rel, &atoms[j].rel);
            if ri.num_states().saturating_mul(rj.num_states())
                > cfg.inclusion_state_budget * cfg.inclusion_state_budget
            {
                stats.budget_skips += 1;
                continue;
            }
            let both = ri.intersect(rj);
            if both.is_empty() {
                continue; // contradiction; E001/E006 territory, not ours
            }
            // try: drop the weaker side, else replace both by the merge
            let trials: [(usize, RelEdit, StepKind); 3] = [
                (j, RelEdit::Keep, StepKind::DropSubsumed),
                (i, RelEdit::Keep, StepKind::DropSubsumed),
                (
                    j,
                    RelEdit::Replace(
                        format!("{}&{}", atoms[i].name, atoms[j].name),
                        Arc::new(both.minimized()),
                    ),
                    StepKind::MergeParallel,
                ),
            ];
            let mut admitted = false;
            for (dropped, edit, kind) in trials {
                if admitted {
                    break;
                }
                let kept = if dropped == i { j } else { i };
                let replacement: &SyncRel = match &edit {
                    RelEdit::Replace(_, r) => r,
                    _ => &atoms[kept].rel,
                };
                match verify_equiv(&both, replacement, cfg) {
                    Verdict::Budget => stats.budget_skips += 1,
                    Verdict::Refuted => stats.rejected += 1,
                    Verdict::Verified => {
                        let mut edits = keep_all();
                        edits[dropped] = RelEdit::Drop;
                        if let RelEdit::Replace(..) = edit {
                            edits[kept] = edit;
                        }
                        let Some(q2) = rebuild(
                            q,
                            &BTreeSet::new(),
                            &BTreeMap::new(),
                            &BTreeMap::new(),
                            &edits,
                        ) else {
                            continue;
                        };
                        let detail = match kind {
                            StepKind::MergeParallel => format!(
                                "merged parallel atoms `{}` and `{}` into their intersection",
                                atoms[i].name, atoms[j].name
                            ),
                            _ => format!(
                                "dropped `{}`: subsumed by `{}` on the same arguments",
                                atoms[dropped].name, atoms[kept].name
                            ),
                        };
                        candidates.push((
                            AppliedStep {
                                kind,
                                detail,
                                span: atoms[dropped].span.or(atoms[kept].span),
                            },
                            q2,
                        ));
                        admitted = true;
                    }
                }
            }
        }
    }

    // drop-universal: an atom equal to the universal relation constrains
    // nothing. Unary atoms are only dropped when the path variable keeps
    // another constraint (otherwise the drop merely trades the atom for a
    // W004 warning and the normalizer puts it back).
    for (i, atom) in atoms.iter().enumerate() {
        let arity = atom.rel.arity();
        if arity != atom.args.len() {
            continue;
        }
        if arity == 1 {
            let p = atom.args[0];
            let constrained_elsewhere = atoms
                .iter()
                .enumerate()
                .any(|(k, a)| k != i && a.args.contains(&p));
            if !constrained_elsewhere {
                continue;
            }
        }
        match verify_equiv(&atom.rel, &relations::universal(arity, n), cfg) {
            Verdict::Budget => stats.budget_skips += 1,
            Verdict::Refuted => stats.rejected += 1,
            Verdict::Verified => {
                let mut edits = keep_all();
                edits[i] = RelEdit::Drop;
                if let Some(q2) = rebuild(
                    q,
                    &BTreeSet::new(),
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                    &edits,
                ) {
                    candidates.push((
                        AppliedStep {
                            kind: StepKind::DropUniversal,
                            detail: format!(
                                "dropped `{}`: its language is the universal relation",
                                atom.name
                            ),
                            span: atom.span,
                        },
                        q2,
                    ));
                }
            }
        }
    }

    // contract-equality: eq(π, π′) makes the paths word-interchangeable;
    // fold the one with otherwise-private endpoints into the other.
    for (e, atom) in atoms.iter().enumerate() {
        if atom.args.len() != 2 || atom.rel.arity() != 2 {
            continue;
        }
        match verify_equiv(&atom.rel, &relations::equality(n), cfg) {
            Verdict::Budget => stats.budget_skips += 1,
            Verdict::Refuted => stats.rejected += 1,
            Verdict::Verified => {
                for (keep, drop) in [(atom.args[0], atom.args[1]), (atom.args[1], atom.args[0])] {
                    if let Some(cand) = contract(q, e, keep, drop) {
                        candidates.push(cand);
                        break; // one direction per equality atom suffices
                    }
                }
            }
        }
    }

    // elide-reachability: a path whose constraints are all (verified)
    // universal and whose endpoints stay connected by the remaining path
    // atoms is implied by concatenation — drop it and its constraints.
    'paths: for (p, src, dst) in q.path_atoms() {
        if q.num_path_vars() <= 1 {
            break;
        }
        let constraining: Vec<usize> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.args.contains(&p))
            .map(|(i, _)| i)
            .collect();
        for &c in &constraining {
            if atoms[c].args.len() != 1 || atoms[c].rel.arity() != 1 {
                continue 'paths;
            }
            match verify_equiv(&atoms[c].rel, &relations::universal(1, n), cfg) {
                Verdict::Verified => {}
                Verdict::Budget => {
                    stats.budget_skips += 1;
                    continue 'paths;
                }
                Verdict::Refuted => {
                    stats.rejected += 1;
                    continue 'paths;
                }
            }
        }
        if !chain_reaches(q, p, src, dst) {
            continue;
        }
        let mut edits = keep_all();
        for &c in &constraining {
            edits[c] = RelEdit::Drop;
        }
        let mut drops = BTreeSet::new();
        drops.insert(p.0);
        if let Some(q2) = rebuild(q, &drops, &BTreeMap::new(), &BTreeMap::new(), &edits) {
            candidates.push((
                AppliedStep {
                    kind: StepKind::ElideReachability,
                    detail: format!(
                        "elided path `{}`: `{}` already reaches `{}` through the remaining \
                         atoms, and every constraint on it is universal",
                        q.path_name(p),
                        q.node_name(src),
                        q.node_name(dst)
                    ),
                    span: q.path_span(p),
                },
                q2,
            ));
        }
    }

    candidates
}

/// The contract-equality step for one direction: fold path `drop` (and
/// its endpoints, where they differ and are otherwise unused) into
/// `keep`. Returns `None` when the structural side-conditions fail —
/// the *language* condition was already verified by the caller.
fn contract(q: &Ecrpq, e: usize, keep: PathVar, drop: PathVar) -> Option<(AppliedStep, Ecrpq)> {
    let atoms = q.rel_atoms();
    // substitution must keep every atom's arguments pairwise distinct
    for (k, a) in atoms.iter().enumerate() {
        if k != e && a.args.contains(&keep) && a.args.contains(&drop) {
            return None;
        }
    }
    let (sk, dk) = q.endpoints(keep);
    let (sd, dd) = q.endpoints(drop);
    let mut node_map: BTreeMap<u32, u32> = BTreeMap::new();
    for (from, to) in [(sd, sk), (dd, dk)] {
        if from == to {
            continue;
        }
        match node_map.get(&from.0) {
            Some(&t) if t != to.0 => return None, // self-loop vs two targets
            _ => {
                node_map.insert(from.0, to.0);
            }
        }
    }
    // a folded-away endpoint must be private to the dropped path: not
    // free, and on no other path atom — otherwise identifying it with
    // `keep`'s endpoint would genuinely change the query
    for &from in node_map.keys() {
        let v = NodeVar(from);
        if q.free_vars().contains(&v) {
            return None;
        }
        for (pp, s, d) in q.path_atoms() {
            if pp != drop && (s == v || d == v) {
                return None;
            }
        }
    }
    let mut edits: Vec<RelEdit> = vec![RelEdit::Keep; atoms.len()];
    edits[e] = RelEdit::Drop;
    let mut drops = BTreeSet::new();
    drops.insert(drop.0);
    let mut path_map = BTreeMap::new();
    path_map.insert(drop.0, keep.0);
    let q2 = rebuild(q, &drops, &path_map, &node_map, &edits)?;
    Some((
        AppliedStep {
            kind: StepKind::ContractEquality,
            detail: format!(
                "contracted equality `{}({}, {})`: folded path `{}` into `{}`",
                atoms[e].name,
                q.path_name(atoms[e].args[0]),
                q.path_name(atoms[e].args[1]),
                q.path_name(drop),
                q.path_name(keep)
            ),
            span: atoms[e].span,
        },
        q2,
    ))
}

/// Whether `src` reaches `dst` through the directed path atoms of `q`
/// other than `skip` (trivially true when `src == dst` — the empty path).
fn chain_reaches(q: &Ecrpq, skip: PathVar, src: NodeVar, dst: NodeVar) -> bool {
    if src == dst {
        return true;
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); q.num_node_vars()];
    for (p, s, d) in q.path_atoms() {
        if p != skip {
            adj[s.0 as usize].push(d.0);
        }
    }
    let mut visited = vec![false; q.num_node_vars()];
    let mut queue = VecDeque::new();
    visited[src.0 as usize] = true;
    queue.push_back(src.0);
    while let Some(v) = queue.pop_front() {
        if v == dst.0 {
            return true;
        }
        for &w in &adj[v as usize] {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// Rebuilds a candidate query: drops the paths in `drop_paths`,
/// substitutes relation-atom arguments through `path_map` and node
/// variables through `node_map`, applies the per-atom `edits`, garbage
/// collects node variables no kept path touches, and preserves every
/// surviving span (so step diagnostics anchor into the original source).
/// Returns `None` when the result would be degenerate (no paths left, a
/// free variable floating, repeated arguments, or invalid).
fn rebuild(
    q: &Ecrpq,
    drop_paths: &BTreeSet<u32>,
    path_map: &BTreeMap<u32, u32>,
    node_map: &BTreeMap<u32, u32>,
    edits: &[RelEdit],
) -> Option<Ecrpq> {
    let map_node = |v: NodeVar| NodeVar(*node_map.get(&v.0).unwrap_or(&v.0));
    let kept: Vec<(PathVar, NodeVar, NodeVar)> = q
        .path_atoms()
        .filter(|(p, _, _)| !drop_paths.contains(&p.0))
        .collect();
    if kept.is_empty() {
        return None;
    }
    let mut used: BTreeSet<u32> = BTreeSet::new();
    for &(_, s, d) in &kept {
        used.insert(map_node(s).0);
        used.insert(map_node(d).0);
    }
    for &f in q.free_vars() {
        if !used.contains(&map_node(f).0) {
            return None; // a free variable would float off the body
        }
    }

    let mut out = Ecrpq::new(q.alphabet().clone());
    let mut node_ids: BTreeMap<u32, NodeVar> = BTreeMap::new();
    let mut path_ids: BTreeMap<u32, PathVar> = BTreeMap::new();
    for &(p, s, d) in &kept {
        let sm = map_node(s);
        let dm = map_node(d);
        let sv = *node_ids
            .entry(sm.0)
            .or_insert_with(|| out.node_var(q.node_name(sm)));
        let dv = *node_ids
            .entry(dm.0)
            .or_insert_with(|| out.node_var(q.node_name(dm)));
        let np = out.path_atom_spanned(sv, q.path_name(p), dv, q.path_span(p));
        path_ids.insert(p.0, np);
    }
    for (i, atom) in q.rel_atoms().iter().enumerate() {
        let (name, rel) = match edits.get(i)? {
            RelEdit::Drop => continue,
            RelEdit::Keep => (atom.name.clone(), atom.rel.clone()),
            RelEdit::Replace(n, r) => (n.clone(), r.clone()),
        };
        let mut args: Vec<PathVar> = Vec::with_capacity(atom.args.len());
        for &a in &atom.args {
            let mapped = *path_map.get(&a.0).unwrap_or(&a.0);
            args.push(*path_ids.get(&mapped)?);
        }
        let mut sorted = args.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != args.len() {
            return None;
        }
        out.rel_atom_spanned(&name, rel, &args, atom.span);
    }
    let frees: Vec<NodeVar> = q
        .free_vars()
        .iter()
        .map(|&f| node_ids.get(&map_node(f).0).copied())
        .collect::<Option<_>>()?;
    let spans: Vec<Option<Span>> = (0..frees.len()).map(|i| q.free_span(i)).collect();
    out.set_free_spanned(&frees, &spans);
    out.validate().ok()?;
    Some(out)
}

/// Applies every W006 suggestion of [`crate::analyze`] to a query file
/// (one query per non-empty, non-`#` line, each parsed with a fresh
/// alphabet — the convention of the `analyze` CLI). Lines that fail to
/// parse are kept verbatim. Returns the rewritten text and the number of
/// changed lines; running it twice is a no-op, because a query rewritten
/// into the PTIME regime can never earn another W006.
pub fn fix_source(text: &str) -> (String, usize) {
    let registry = ecrpq_query::RelationRegistry::new();
    let mut out = String::new();
    let mut changed = 0usize;
    for line in text.lines() {
        let trimmed = line.trim();
        let mut fixed: Option<String> = None;
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            let mut alphabet = ecrpq_automata::Alphabet::new();
            if let Ok(q) = ecrpq_query::parse_query(trimmed, &mut alphabet, &registry) {
                let analysis = crate::analyze(&q);
                fixed = analysis
                    .diagnostics
                    .iter()
                    .find(|d| d.code == crate::Code::MinimizableQuery)
                    .and_then(|d| d.suggestion.clone());
            }
        }
        match fixed {
            Some(replacement) => {
                changed += 1;
                out.push_str(&replacement);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::Alphabet;
    use ecrpq_query::{parse_query, RelationRegistry};

    fn parsed(src: &str) -> Ecrpq {
        let mut alphabet = Alphabet::ascii_lower(2);
        parse_query(src, &mut alphabet, &RelationRegistry::new()).unwrap()
    }

    #[test]
    fn ptime_query_is_left_alone() {
        let q = parsed("q(x) :- x -(a*b)-> y");
        let m = minimize(&q);
        assert!(m.steps.is_empty());
        assert_eq!(m.before_class, CombinedClass::PolynomialTime);
        assert_eq!(m.after_class, CombinedClass::PolynomialTime);
    }

    #[test]
    fn parallel_equality_paths_contract_to_ptime() {
        // four parallel equal paths: cc_vertex 4 → PSPACE; contracting
        // the equalities folds them into one path → PTIME
        let q =
            parsed("x -[p]-> y, x -[r]-> y, x -[s]-> y, x -[t]-> y, eq(p, r), eq(r, s), eq(s, t)");
        let m = minimize(&q);
        assert_eq!(m.before_class, CombinedClass::PspaceComplete);
        assert_eq!(
            m.after_class,
            CombinedClass::PolynomialTime,
            "{:?}",
            m.steps
        );
        assert!(m.steps.iter().all(|s| s.kind == StepKind::ContractEquality));
        assert_eq!(m.query.num_path_vars(), 1);
    }

    #[test]
    fn chorded_clique_elides_to_a_chain() {
        // the node graph is a 4-clique (tw 3 → NP); the three chords are
        // universal-constrained and implied by the chain → PTIME
        let q = parsed(
            "q(w, z) :- w -[p1]-> x, x -[p2]-> y, y -[p3]-> z, \
             w -[c1]-> y, x -[c2]-> z, w -[c3]-> z, \
             p1 in a*b, p2 in (a|b)*a, p3 in b*, \
             c1 in (a|b)*, c2 in (a|b)*, c3 in (a|b)*",
        );
        let m = minimize(&q);
        assert_eq!(m.before_class, CombinedClass::NpComplete);
        assert_eq!(
            m.after_class,
            CombinedClass::PolynomialTime,
            "{:?}",
            m.steps
        );
        assert_eq!(m.query.num_path_vars(), 3);
        assert!(m.after.treewidth <= 1);
    }

    #[test]
    fn subsumed_atom_is_dropped() {
        let q = parsed("x -[p]-> y, p in a+, p in (a|b)*");
        let m = minimize(&q);
        assert!(m
            .steps
            .iter()
            .any(|s| s.kind == StepKind::DropSubsumed || s.kind == StepKind::MergeParallel));
        assert!(m.query.rel_atoms().len() < q.rel_atoms().len());
    }

    #[test]
    fn universal_binary_atom_is_dropped() {
        let q = parsed("x -[p]-> y, y -[r]-> z, p in a+, r in b+, universal(p, r)");
        let m = minimize(&q);
        assert!(m.steps.iter().any(|s| s.kind == StepKind::DropUniversal));
        assert_eq!(m.query.rel_atoms().len(), 2);
    }

    #[test]
    fn equality_between_shared_endpoints_is_not_contracted() {
        // eq on paths with *distinct, used* endpoints must not fold —
        // the endpoints are observable through the free tuple
        let q = parsed("q(x, y, w, z) :- x -[p]-> y, w -[r]-> z, eq(p, r)");
        let m = minimize(&q);
        assert!(
            m.steps.iter().all(|s| s.kind != StepKind::ContractEquality),
            "{:?}",
            m.steps
        );
    }

    #[test]
    fn eq_length_is_not_mistaken_for_equality() {
        let q = parsed("x -[p]-> y, x -[r]-> y, eq_len(p, r)");
        let m = minimize(&q);
        assert!(
            m.steps.iter().all(|s| s.kind != StepKind::ContractEquality),
            "{:?}",
            m.steps
        );
    }

    #[test]
    fn constrained_path_is_not_elided() {
        let q = parsed("x -[p]-> y, y -[r]-> z, x -[c]-> z, p in a*, r in a*, c in ab");
        let m = minimize(&q);
        assert!(
            m.steps
                .iter()
                .all(|s| s.kind != StepKind::ElideReachability),
            "{:?}",
            m.steps
        );
    }

    #[test]
    fn oversized_queries_are_skipped() {
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let vars: Vec<NodeVar> = (0..=SIZE_BOUND + 1)
            .map(|i| q.node_var(&format!("x{i}")))
            .collect();
        for i in 0..SIZE_BOUND + 1 {
            q.path_atom(vars[i], &format!("p{i}"), vars[i + 1]);
        }
        let m = minimize(&q);
        assert!(m.skipped);
        assert!(m.steps.is_empty());
    }

    #[test]
    fn steps_anchor_into_the_original_source() {
        let src = "x -[p]-> y, x -[r]-> y, eq(p, r)";
        let q = parsed(src);
        let m = minimize(&q);
        assert!(!m.steps.is_empty());
        for s in &m.steps {
            let sp = s.span.expect("parsed atoms carry spans");
            assert!(sp.end <= src.len(), "span {sp:?} outside source");
        }
    }

    #[test]
    fn fix_source_rewrites_only_minimizable_lines_and_is_idempotent() {
        let text = "# corpus\n\
                    q(x) :- x -(a*b)-> y\n\
                    x -[p]-> y, x -[r]-> y, x -[s]-> y, x -[t]-> y, eq(p, r), eq(r, s), eq(s, t)\n";
        let (fixed, changed) = fix_source(text);
        assert_eq!(changed, 1, "{fixed}");
        assert!(fixed.starts_with("# corpus\n"));
        let (fixed2, changed2) = fix_source(&fixed);
        assert_eq!(changed2, 0);
        assert_eq!(fixed, fixed2);
    }
}
