//! α-acyclicity of the CQ reduction via GYO ear removal.
//!
//! The Lemma 4.3 reduction turns a prepared ECRPQ into a CQ whose atoms
//! are the merged relation components; atom `i`'s variable set is the set
//! of endpoint node variables of the component's path variables. The
//! hypergraph over those variable sets is α-acyclic exactly when the
//! GYO (Graham / Yu–Özsoyoğlu) ear-removal procedure empties it, and the
//! removal order yields a *join tree*: a tree over the atoms in which,
//! for every variable, the atoms containing it form a connected subtree
//! (the running-intersection property).
//!
//! A join tree licenses the classic Yannakakis evaluation: a bottom-up
//! semijoin pass followed by a top-down pass makes every atom's domain
//! globally consistent, after which enumeration is backtrack-free on the
//! tree (`core::semijoin::yannakakis_domains` implements the passes over
//! the product-automaton sweeps instead of materialized relations).

use ecrpq_query::Ecrpq;

/// A join tree over the hyperedges (merged atoms) of an α-acyclic
/// hypergraph, as produced by [`gyo_join_tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    /// `parent[i]` = the hyperedge `i` was absorbed into when removed as
    /// an ear, or `None` when `i` was removed isolated (a root of its
    /// connected component of the join forest).
    pub parent: Vec<Option<usize>>,
    /// Hyperedge indices in removal order: ears are removed leaves-first,
    /// so every edge appears *before* its parent. Process `order`
    /// forwards for the bottom-up pass, backwards for top-down.
    pub order: Vec<usize>,
}

impl JoinTree {
    /// Children of hyperedge `i` (edges removed into `i`).
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(move |&(_, p)| *p == Some(i))
            .map(|(c, _)| c)
    }

    /// Renders the tree as `i->j` arcs (roots as `i->·`) in index order,
    /// for `Plan::explain`.
    pub fn arcs(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.parent.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match p {
                Some(j) => out.push_str(&format!("{i}->{j}")),
                None => out.push_str(&format!("{i}->·")),
            }
        }
        out
    }
}

/// GYO ear removal on the hypergraph whose hyperedge `i` is the vertex
/// set `edges[i]` (need not be sorted; duplicates are fine). Returns the
/// join tree when the hypergraph is α-acyclic, `None` when it is cyclic.
///
/// An *ear* is a hyperedge `e` such that every vertex of `e` shared with
/// some other live hyperedge is covered by a single live *witness*
/// hyperedge `w ≠ e`; removing `e` records `parent[e] = w`. A hyperedge
/// sharing no vertices is removed with no parent. The hypergraph is
/// α-acyclic iff this terminates with everything removed (Graham 1979;
/// Yu & Özsoyoğlu 1979).
///
/// Complexity: `O(m² · Σ|edges[i]|)` for `m` hyperedges — the CQ
/// reduction has one hyperedge per merged component, so `m` is tiny.
pub fn gyo_join_tree(edges: &[Vec<usize>]) -> Option<JoinTree> {
    let m = edges.len();
    let sets: Vec<Vec<usize>> = edges
        .iter()
        .map(|e| {
            let mut s = e.clone();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let mut live = vec![true; m];
    let mut parent = vec![None; m];
    let mut order = Vec::with_capacity(m);
    let mut remaining = m;
    while remaining > 0 {
        let mut progressed = false;
        'ears: for i in 0..m {
            if !live[i] {
                continue;
            }
            // vertices of i shared with any *other* live hyperedge
            let shared: Vec<usize> = sets[i]
                .iter()
                .copied()
                .filter(|v| (0..m).any(|j| j != i && live[j] && sets[j].binary_search(v).is_ok()))
                .collect();
            if shared.is_empty() {
                // isolated ear: no witness needed
                live[i] = false;
                parent[i] = None;
                order.push(i);
                remaining -= 1;
                progressed = true;
                continue 'ears;
            }
            for j in 0..m {
                if j == i || !live[j] {
                    continue;
                }
                if shared.iter().all(|v| sets[j].binary_search(v).is_ok()) {
                    live[i] = false;
                    parent[i] = Some(j);
                    order.push(i);
                    remaining -= 1;
                    progressed = true;
                    continue 'ears;
                }
            }
        }
        if !progressed {
            return None; // no ear exists: cyclic
        }
    }
    Some(JoinTree { parent, order })
}

/// The hyperedges of the CQ reduction of `query`: one vertex set per
/// merged relation component, mirroring `PreparedQuery::build` exactly
/// (normalize, take the abstraction's `G^rel` components, collect the
/// endpoint node variables of each component's path variables).
pub fn cq_hyperedges(query: &Ecrpq) -> Vec<Vec<usize>> {
    let query = query.normalized();
    let abstraction = query.abstraction();
    let comps = abstraction.rel_components();
    comps
        .edges
        .iter()
        .map(|edge_list| {
            let mut verts: Vec<usize> = edge_list
                .iter()
                .flat_map(|&e| {
                    let (u, v) = abstraction.edge(e);
                    [u, v]
                })
                .collect();
            verts.sort_unstable();
            verts.dedup();
            verts
        })
        .collect()
}

/// Join tree of `query`'s CQ reduction, or `None` when the reduction is
/// cyclic. Atom indices in the tree match the merged-atom indices of
/// `PreparedQuery::build` (both follow `rel_components` order).
pub fn acyclic_join_tree(query: &Ecrpq) -> Option<JoinTree> {
    gyo_join_tree(&cq_hyperedges(query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::{relations, Alphabet};
    use std::sync::Arc;

    #[test]
    fn chain_is_acyclic() {
        // {x,y}, {y,z}: edge 0 is an ear into 1 (or vice versa)
        let t = gyo_join_tree(&[vec![0, 1], vec![1, 2]]).expect("acyclic");
        assert_eq!(t.order.len(), 2);
        // the removed ear's parent is the other edge; the last removal is
        // isolated
        let first = t.order[0];
        let last = t.order[1];
        assert_eq!(t.parent[first], Some(last));
        assert_eq!(t.parent[last], None);
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(gyo_join_tree(&[vec![0, 1], vec![1, 2], vec![2, 0]]).is_none());
    }

    #[test]
    fn contained_edge_is_an_ear() {
        // {x,y,z} ⊇ {y,z}: both removable, acyclic; whichever goes
        // first parents into the other
        let t = gyo_join_tree(&[vec![0, 1, 2], vec![1, 2]]).expect("acyclic");
        let first = t.order[0];
        assert_eq!(t.parent[first], Some(1 - first));
        assert_eq!(t.parent[1 - first], None);
    }

    #[test]
    fn star_is_acyclic() {
        let t = gyo_join_tree(&[vec![0, 1], vec![0, 2], vec![0, 3]]).expect("acyclic");
        // every variable's atoms form a connected subtree: all parents
        // chain through atoms containing vertex 0, which is all of them
        assert_eq!(t.order.len(), 3);
        for (i, p) in t.parent.iter().enumerate() {
            if let Some(j) = p {
                assert_ne!(i, *j);
            }
        }
    }

    #[test]
    fn disjoint_edges_are_isolated_roots() {
        let t = gyo_join_tree(&[vec![0, 1], vec![2, 3]]).expect("acyclic");
        assert_eq!(t.parent, vec![None, None]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(
            gyo_join_tree(&[]),
            Some(JoinTree {
                parent: vec![],
                order: vec![]
            })
        );
        let t = gyo_join_tree(&[vec![0, 1]]).expect("acyclic");
        assert_eq!(t.parent, vec![None]);
    }

    #[test]
    fn cycle_with_pendant_still_cyclic() {
        // triangle plus an ear hanging off it: the ear goes, the core stays
        assert!(gyo_join_tree(&[vec![0, 1], vec![1, 2], vec![2, 0], vec![0, 9]]).is_none());
    }

    #[test]
    fn arcs_render() {
        let t = gyo_join_tree(&[vec![0, 1], vec![1, 2]]).unwrap();
        let s = t.arcs();
        assert!(s == "0->1, 1->·" || s == "0->·, 1->0", "{s}");
    }

    fn two_atom_chain_query() -> Ecrpq {
        // x -p-> y, y -r-> z with separate unary languages on p and r:
        // two merged components, hyperedges {x,y} and {y,z}
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let z = q.node_var("z");
        let p = q.path_atom(x, "p", y);
        let r = q.path_atom(y, "r", z);
        q.rel_atom("lp", Arc::new(relations::word_relation(&[0], 2)), &[p]);
        q.rel_atom("lr", Arc::new(relations::word_relation(&[1], 2)), &[r]);
        q
    }

    #[test]
    fn query_chain_has_join_tree() {
        let q = two_atom_chain_query();
        let h = cq_hyperedges(&q);
        assert_eq!(h, vec![vec![0, 1], vec![1, 2]]);
        assert!(acyclic_join_tree(&q).is_some());
    }

    #[test]
    fn query_triangle_is_cyclic() {
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let z = q.node_var("z");
        let p = q.path_atom(x, "p", y);
        let r = q.path_atom(y, "r", z);
        let s = q.path_atom(z, "s", x);
        let w = Arc::new(relations::word_relation(&[0], 2));
        q.rel_atom("lp", w.clone(), &[p]);
        q.rel_atom("lr", w.clone(), &[r]);
        q.rel_atom("ls", w, &[s]);
        assert!(acyclic_join_tree(&q).is_none());
    }

    #[test]
    fn merged_component_collapses_to_one_hyperedge() {
        // eq_len(p1,p2) merges both paths into one component: a single
        // hyperedge {x,y,z} — trivially acyclic even though the node
        // graph has a triangle-free chain
        let mut q = Ecrpq::new(Alphabet::ascii_lower(2));
        let x = q.node_var("x");
        let y = q.node_var("y");
        let z = q.node_var("z");
        let p1 = q.path_atom(x, "p1", y);
        let p2 = q.path_atom(y, "p2", z);
        q.rel_atom("eq", Arc::new(relations::eq_length(2, 2)), &[p1, p2]);
        let h = cq_hyperedges(&q);
        assert_eq!(h, vec![vec![0, 1, 2]]);
        assert!(acyclic_join_tree(&q).is_some());
    }
}
