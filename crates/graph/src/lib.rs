#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Edge-labelled graph databases.
//!
//! “A graph database is a finite edge-labelled graph, that is, `D = (V, E)`
//! where `V` is a finite set of vertices, `E ⊆ V × A × V` is the set of
//! labeled edges, and `A` is a finite alphabet” (§2 of the paper). Paths may
//! be empty (`label(p) = ε`), and a path's label is the concatenation of its
//! edge labels.
//!
//! This crate provides the database representation ([`GraphDb`]), a textual
//! parser ([`parse`]), path objects and reachability utilities ([`paths`]),
//! and DOT export ([`dot`]).

pub mod db;
pub mod dot;
pub mod parse;
pub mod paths;

pub use db::{Edge, GraphDb, NodeId};
pub use parse::{parse_graph, to_text};
pub use paths::Path;
