//! DOT (Graphviz) export for graph databases.

use crate::db::GraphDb;
use std::fmt::Write as _;

/// Renders the database in DOT format.
pub fn to_dot(db: &GraphDb) -> String {
    let mut out = String::from("digraph db {\n  rankdir=LR;\n");
    for v in 0..db.num_nodes() as u32 {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(db.node_name(v)));
    }
    for e in db.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.src,
            e.dst,
            escape(&db.alphabet().char_of(e.label).to_string())
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut g = GraphDb::new();
        let u = g.add_node("u");
        let v = g.add_node("v\"x");
        g.add_edge(u, 'a', v);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph db {"));
        assert!(dot.contains("n0 -> n1 [label=\"a\"]"));
        assert!(dot.contains("v\\\"x"));
        assert!(dot.ends_with("}\n"));
    }
}
