//! Textual graph database format.
//!
//! One edge per line: `src -a-> dst` where `a` is a single label
//! character. Blank lines and `#` comments are ignored. Vertices are
//! created on first mention; a line containing a bare identifier declares
//! an isolated vertex.
//!
//! ```text
//! # Example 2.1-style database
//! u -a-> v
//! v -b-> w
//! lonely
//! ```

use crate::db::GraphDb;
use std::fmt;

/// A graph parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for GraphParseError {}

/// Serializes a database into the edge-list format accepted by
/// [`parse_graph`] (isolated vertices are emitted as bare names).
pub fn to_text(db: &GraphDb) -> String {
    let mut out = String::new();
    let mut has_edge = vec![false; db.num_nodes()];
    for e in db.edges() {
        has_edge[e.src as usize] = true;
        has_edge[e.dst as usize] = true;
        out.push_str(&format!(
            "{} -{}-> {}\n",
            db.node_name(e.src),
            db.alphabet().char_of(e.label),
            db.node_name(e.dst)
        ));
    }
    for (v, covered) in has_edge.iter().enumerate() {
        if !covered {
            out.push_str(db.node_name(v as u32));
            out.push('\n');
        }
    }
    out
}

/// Parses the edge-list format described in the module docs.
pub fn parse_graph(input: &str) -> Result<GraphDb, GraphParseError> {
    let mut g = GraphDb::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| GraphParseError {
            line: lineno + 1,
            message: message.to_string(),
        };
        if let Some(arrow_start) = line.find(" -") {
            let src_name = line[..arrow_start].trim();
            let rest = &line[arrow_start + 2..];
            let Some(arrow_end) = rest.find("-> ") else {
                return Err(err("expected `src -label-> dst`"));
            };
            let label_str = &rest[..arrow_end];
            let dst_name = rest[arrow_end + 3..].trim();
            let mut chars = label_str.chars();
            let (Some(label), None) = (chars.next(), chars.next()) else {
                return Err(err("edge label must be a single character"));
            };
            if src_name.is_empty() || dst_name.is_empty() || dst_name.contains(' ') {
                return Err(err("malformed vertex name"));
            }
            let s = g.add_node(src_name);
            let d = g.add_node(dst_name);
            g.add_edge(s, label, d);
        } else if line.contains(' ') {
            return Err(err("expected `src -label-> dst` or a bare vertex name"));
        } else {
            g.add_node(line);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let g = parse_graph("u -a-> v\nv -b-> w\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let a = g.alphabet().symbol('a').unwrap();
        assert!(g.has_edge(g.node("u").unwrap(), a, g.node("v").unwrap()));
    }

    #[test]
    fn comments_blank_lines_isolated() {
        let g = parse_graph("# header\n\nu -a-> v # trailing\nlonely\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert!(g.node("lonely").is_some());
    }

    #[test]
    fn self_loops_and_multilabels() {
        let g = parse_graph("v -a-> v\nv -b-> v\n").unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_graph("u -ab-> v").is_err());
        assert!(parse_graph("u - -> v").is_ok()); // ' ' is a (weird) single-char label
        assert!(parse_graph("u v w").is_err());
        assert!(parse_graph("u -a->").is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse_graph("u -a-> v\nbad line here\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn text_roundtrip() {
        let src = "u -a-> v\nv -b-> w\nu -b-> u\nlonely\n";
        let g = parse_graph(src).unwrap();
        let text = to_text(&g);
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edges() {
            let src2 = g2.node(g.node_name(e.src)).unwrap();
            let dst2 = g2.node(g.node_name(e.dst)).unwrap();
            let sym = g2.alphabet().symbol(g.alphabet().char_of(e.label)).unwrap();
            assert!(g2.has_edge(src2, sym, dst2));
        }
        assert!(g2.node("lonely").is_some());
    }
}
