//! The graph database representation.
//!
//! Two layouts coexist. The **builder** layout is per-vertex sorted
//! adjacency vectors (`Vec<Vec<(Symbol, NodeId)>>`), cheap to mutate and
//! the representation every `add_*` method maintains. The **frozen** layout
//! is a CSR (compressed sparse row) index built lazily on first query:
//! all edges flattened into one vector with per-vertex offsets, plus a
//! `(vertex, label) → range` index so [`GraphDb::successors`] and
//! [`GraphDb::predecessors`] are O(1) slice lookups — the access pattern
//! the product evaluator's BFS performs per configuration expansion. Any
//! mutation thaws the index; the next query rebuilds it.

use ecrpq_automata::fnv::FnvHashMap;
use ecrpq_automata::{Alphabet, Symbol};
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a database vertex (dense, `0..num_nodes`).
pub type NodeId = u32;

/// A labelled edge `(src, label, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: NodeId,
    /// Edge label.
    pub label: Symbol,
    /// Destination vertex.
    pub dst: NodeId,
}

/// The frozen CSR index of one adjacency direction: the flat `(label,
/// neighbour)` pairs of all vertices, vertex offsets into them, the
/// `(vertex, label) → range` offsets, and the neighbour column those label
/// ranges index (so a successor lookup yields a `&[NodeId]` directly).
#[derive(Debug, Clone, Default)]
struct CsrSide {
    flat: Vec<(Symbol, NodeId)>,
    /// `flat[node[v]..node[v+1]]` = vertex `v`'s pairs.
    node: Vec<u32>,
    /// `targets[label[v·L + a]..label[v·L + a + 1]]` = `a`-neighbours of `v`.
    label: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrSide {
    fn build(lists: &[Vec<(Symbol, NodeId)>], num_labels: usize) -> CsrSide {
        let total: usize = lists.iter().map(Vec::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "edge count overflows CSR offsets"
        );
        let mut flat = Vec::with_capacity(total);
        let mut node = Vec::with_capacity(lists.len() + 1);
        let mut label = Vec::with_capacity(lists.len() * num_labels + 1);
        let mut targets = Vec::with_capacity(total);
        node.push(0u32);
        for list in lists {
            // the builder's sorted inserts are what make the label ranges
            // contiguous; a violation here means a mutator skipped the
            // binary-search insert
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency list not sorted/deduped"
            );
            let base = flat.len();
            let mut cursor = 0usize;
            for a in 0..num_labels {
                while cursor < list.len() && (list[cursor].0 as usize) < a {
                    cursor += 1;
                }
                label.push((base + cursor) as u32);
            }
            flat.extend_from_slice(list);
            targets.extend(list.iter().map(|&(_, t)| t));
            node.push(flat.len() as u32);
        }
        label.push(total as u32);
        CsrSide {
            flat,
            node,
            label,
            targets,
        }
    }

    fn pairs(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.flat[self.node[v as usize] as usize..self.node[v as usize + 1] as usize]
    }

    fn neighbours(&self, v: NodeId, a: Symbol, num_labels: usize) -> &[NodeId] {
        if (a as usize) >= num_labels {
            return &[];
        }
        let i = v as usize * num_labels + a as usize;
        &self.targets[self.label[i] as usize..self.label[i + 1] as usize]
    }
}

/// Both directions of the frozen index.
#[derive(Debug, Clone)]
struct Csr {
    num_labels: usize,
    out: CsrSide,
    inc: CsrSide,
}

/// A finite edge-labelled directed graph with named vertices — the
/// “graph database” of §2.
///
/// Parallel edges with distinct labels are allowed (`E ⊆ V × A × V` is a
/// set); duplicate `(src, label, dst)` triples are stored once.
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    alphabet: Alphabet,
    node_names: Vec<String>,
    name_index: FnvHashMap<String, NodeId>,
    /// `out[v]` lists `(label, dst)` pairs, sorted and deduped.
    out: Vec<Vec<(Symbol, NodeId)>>,
    /// `inc[v]` lists `(label, src)` pairs, sorted and deduped.
    inc: Vec<Vec<(Symbol, NodeId)>>,
    num_edges: usize,
    /// Lazily frozen CSR index; taken (thawed) by every mutator.
    csr: OnceLock<Csr>,
}

impl GraphDb {
    /// Creates an empty database over an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database over a given alphabet.
    pub fn with_alphabet(alphabet: Alphabet) -> Self {
        GraphDb {
            alphabet,
            ..Self::default()
        }
    }

    /// The alphabet of edge labels.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Mutable access to the alphabet (to intern marker symbols, as the
    /// constructions in §5 of the paper do). Thaws the CSR index: the
    /// label-range table is sized by the alphabet.
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        self.csr.take();
        &mut self.alphabet
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of distinct labelled edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The frozen CSR index, building it on first use.
    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr {
            num_labels: self.alphabet.len(),
            out: CsrSide::build(&self.out, self.alphabet.len()),
            inc: CsrSide::build(&self.inc, self.alphabet.len()),
        })
    }

    /// Forces the CSR freeze now instead of on the first query — useful
    /// before handing shared references to parallel workers, so the build
    /// happens once outside the measured/contended section. Idempotent;
    /// any later mutation thaws the index again.
    pub fn freeze(&self) {
        let _ = self.csr();
    }

    /// Whether the CSR index is currently built.
    pub fn is_frozen(&self) -> bool {
        self.csr.get().is_some()
    }

    /// Adds a vertex with an auto-generated name, returning its id.
    pub fn add_node_auto(&mut self) -> NodeId {
        let name = format!("v{}", self.node_names.len());
        self.add_node(&name)
    }

    /// Adds `count` *anonymous* vertices in one call, returning the id of
    /// the first (ids are contiguous). Anonymous vertices carry an empty
    /// name and no name-index entry — [`Self::node`] will not find them
    /// and [`Self::node_name`] returns `""` — so a 10⁶–10⁷-node synthetic
    /// graph does not pay two heap strings per vertex.
    pub fn add_nodes_anon(&mut self, count: usize) -> NodeId {
        self.csr.take();
        // lint:allow(unwrap): documented panic: node count capped at u32
        let first = NodeId::try_from(self.node_names.len()).expect("too many nodes");
        let end = self.node_names.len() + count;
        // lint:allow(unwrap): documented panic: node count capped at u32
        let _ = NodeId::try_from(end).expect("too many nodes");
        self.node_names.resize(end, String::new());
        self.out.resize(end, Vec::new());
        self.inc.resize(end, Vec::new());
        first
    }

    /// Adds (or finds) a vertex by name.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        self.csr.take();
        // lint:allow(unwrap): documented panic: node count capped at u32
        let id = NodeId::try_from(self.node_names.len()).expect("too many nodes");
        self.node_names.push(name.to_string());
        self.name_index.insert(name.to_string(), id);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Looks up a vertex by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The name of vertex `v`.
    pub fn node_name(&self, v: NodeId) -> &str {
        &self.node_names[v as usize]
    }

    /// Iterates over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_names.len() as NodeId)
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Adds a labelled edge; the label character is interned. Returns
    /// `true` if the edge was new.
    pub fn add_edge(&mut self, src: NodeId, label: char, dst: NodeId) -> bool {
        let s = self.alphabet.intern(label);
        self.add_edge_sym(src, s, dst)
    }

    /// Adds an edge with an already-interned label symbol.
    pub fn add_edge_sym(&mut self, src: NodeId, label: Symbol, dst: NodeId) -> bool {
        assert!((src as usize) < self.num_nodes() && (dst as usize) < self.num_nodes());
        let entry = (label, dst);
        match self.out[src as usize].binary_search(&entry) {
            Ok(_) => false,
            Err(pos) => {
                self.csr.take();
                self.out[src as usize].insert(pos, entry);
                let rentry = (label, src);
                let rpos = self.inc[dst as usize].binary_search(&rentry).unwrap_err();
                self.inc[dst as usize].insert(rpos, rentry);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Outgoing `(label, dst)` pairs of `v`, sorted by label then target.
    pub fn out_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.csr().out.pairs(v)
    }

    /// Incoming `(label, src)` pairs of `v`.
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.csr().inc.pairs(v)
    }

    /// Successors of `v` on a given label — an O(1) range lookup into the
    /// frozen CSR index.
    pub fn successors(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        let c = self.csr();
        c.out.neighbours(v, label, c.num_labels)
    }

    /// Predecessors of `v` on a given label — an O(1) range lookup into
    /// the frozen CSR index.
    pub fn predecessors(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        let c = self.csr();
        c.inc.neighbours(v, label, c.num_labels)
    }

    /// The `(start, end)` offsets of `v`'s `label`-successors inside
    /// [`GraphDb::csr_targets`]. Bulk access path for kernels that walk
    /// many adjacency ranges over one pinned targets slice — pairs with
    /// `csr_targets()` so the borrow of the shared slice is taken once,
    /// outside the per-node loop. Out-of-alphabet labels yield an empty
    /// range.
    #[inline]
    pub fn successor_range(&self, v: NodeId, label: Symbol) -> std::ops::Range<usize> {
        let c = self.csr();
        if (label as usize) >= c.num_labels {
            return 0..0;
        }
        let i = v as usize * c.num_labels + label as usize;
        c.out.label[i] as usize..c.out.label[i + 1] as usize
    }

    /// The frozen CSR target array: `csr_targets()[r]` for
    /// `r = successor_range(v, a)` are the `a`-successors of `v`, sorted
    /// ascending. Freezes the index on first use.
    #[inline]
    pub fn csr_targets(&self) -> &[NodeId] {
        &self.csr().out.targets
    }

    /// Successors of `v` by linear partition-point scan over the builder
    /// adjacency vectors — the pre-CSR access path, kept as the baseline
    /// the legacy-layout evaluator and the differential benchmarks run on.
    pub fn successors_scan(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        let edges = &self.out[v as usize];
        let start = edges.partition_point(|&(l, _)| l < label);
        edges[start..]
            .iter()
            .take_while(move |&&(l, _)| l == label)
            .map(|&(_, t)| t)
    }

    /// Whether the edge `(src, label, dst)` exists.
    pub fn has_edge(&self, src: NodeId, label: Symbol, dst: NodeId) -> bool {
        self.out[src as usize].binary_search(&(label, dst)).is_ok()
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out.iter().enumerate().flat_map(|(src, es)| {
            es.iter().map(move |&(label, dst)| Edge {
                src: src as NodeId,
                label,
                dst,
            })
        })
    }

    /// Re-interns the database over a (super-)alphabet — needed when a
    /// query's regexes introduce symbols the database has never seen, so
    /// that relations built over the extended alphabet apply.
    ///
    /// # Panics
    /// Panics if `alphabet` is missing a character used by an edge.
    pub fn with_extended_alphabet(&self, alphabet: &Alphabet) -> GraphDb {
        if self.alphabet() == alphabet {
            return self.clone();
        }
        let mut out = GraphDb::with_alphabet(alphabet.clone());
        for v in 0..self.num_nodes() as NodeId {
            out.add_node(self.node_name(v));
        }
        for e in self.edges() {
            let c = self.alphabet.char_of(e.label);
            let sym = alphabet
                .symbol(c)
                .unwrap_or_else(|| panic!("alphabet misses edge label {c}"));
            out.add_edge_sym(e.src, sym, e.dst);
        }
        out
    }

    /// Disjoint union with `other`, except that vertices with identical
    /// names are merged (the construction of Lemma 5.1 glues the databases
    /// `D₁, …, D_n` on a single distinguished vertex `s` this way).
    ///
    /// Both databases must share an alphabet prefix: labels are re-interned
    /// by character.
    pub fn union_by_name(&mut self, other: &GraphDb) {
        for v in 0..other.num_nodes() as NodeId {
            self.add_node(other.node_name(v));
        }
        for e in other.edges() {
            // lint:allow(unwrap): every node of `other` was copied in the loop above
            let src = self.node(other.node_name(e.src)).unwrap();
            // lint:allow(unwrap): every node of `other` was copied in the loop above
            let dst = self.node(other.node_name(e.dst)).unwrap();
            let c = other.alphabet.char_of(e.label);
            self.add_edge(src, c, dst);
        }
    }
}

impl fmt::Display for GraphDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph database: {} nodes, {} edges, alphabet {}",
            self.num_nodes(),
            self.num_edges(),
            self.alphabet
        )?;
        for e in self.edges() {
            writeln!(
                f,
                "  {} -{}-> {}",
                self.node_name(e.src),
                self.alphabet.char_of(e.label),
                self.node_name(e.dst)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDb {
        let mut g = GraphDb::new();
        let u = g.add_node("u");
        let v = g.add_node("v");
        let w = g.add_node("w");
        g.add_edge(u, 'a', v);
        g.add_edge(v, 'b', w);
        g.add_edge(u, 'a', w);
        g.add_edge(u, 'b', v);
        g
    }

    #[test]
    fn build_and_query() {
        let g = sample();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        let a = g.alphabet().symbol('a').unwrap();
        let u = g.node("u").unwrap();
        let succ = g.successors(u, a).to_vec();
        assert_eq!(succ, vec![g.node("v").unwrap(), g.node("w").unwrap()]);
    }

    #[test]
    fn csr_matches_scan() {
        let g = sample();
        for v in 0..g.num_nodes() as NodeId {
            for label in 0..g.alphabet().len() as Symbol {
                let scan: Vec<NodeId> = g.successors_scan(v, label).collect();
                assert_eq!(g.successors(v, label), scan.as_slice(), "v={v} a={label}");
                let mut naive: Vec<NodeId> = g
                    .edges()
                    .filter(|e| e.dst == v && e.label == label)
                    .map(|e| e.src)
                    .collect();
                naive.sort_unstable();
                assert_eq!(
                    g.predecessors(v, label),
                    naive.as_slice(),
                    "v={v} a={label}"
                );
            }
        }
        // a symbol the alphabet has never interned: empty slices, no panic
        assert!(g.successors(0, 200).is_empty());
        assert!(g.predecessors(0, 200).is_empty());
    }

    #[test]
    fn mutation_thaws_frozen_index() {
        let mut g = sample();
        g.freeze();
        assert!(g.is_frozen());
        let u = g.node("u").unwrap();
        let w = g.node("w").unwrap();
        assert!(g.add_edge(w, 'b', u));
        assert!(!g.is_frozen(), "add_edge must invalidate the CSR index");
        let b = g.alphabet().symbol('b').unwrap();
        assert_eq!(g.successors(w, b), &[u]);
        assert!(g.is_frozen(), "query refreezes");
        // a duplicate insert changes nothing and keeps the index
        assert!(!g.add_edge(w, 'b', u));
        assert!(g.is_frozen());
        // interning a new alphabet symbol resizes the label table
        g.alphabet_mut().intern('z');
        assert!(!g.is_frozen());
        let z = g.alphabet().symbol('z').unwrap();
        assert!(g.successors(u, z).is_empty());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = sample();
        let u = g.node("u").unwrap();
        let v = g.node("v").unwrap();
        assert!(!g.add_edge(u, 'a', v));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn add_node_idempotent_by_name() {
        let mut g = sample();
        let u1 = g.add_node("u");
        assert_eq!(u1, g.node("u").unwrap());
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn has_edge_and_in_edges() {
        let g = sample();
        let a = g.alphabet().symbol('a').unwrap();
        let b = g.alphabet().symbol('b').unwrap();
        let (u, v, w) = (
            g.node("u").unwrap(),
            g.node("v").unwrap(),
            g.node("w").unwrap(),
        );
        assert!(g.has_edge(u, a, v));
        assert!(!g.has_edge(v, a, u));
        let inc: Vec<_> = g.in_edges(w).to_vec();
        assert_eq!(inc, vec![(a, u), (b, v)]);
    }

    #[test]
    fn union_by_name_glues_shared_vertices() {
        let mut g1 = GraphDb::new();
        let s = g1.add_node("s");
        let x = g1.add_node("x");
        g1.add_edge(s, 'a', x);
        let mut g2 = GraphDb::new();
        let s2 = g2.add_node("s");
        let y = g2.add_node("y");
        g2.add_edge(y, 'b', s2);
        g1.union_by_name(&g2);
        assert_eq!(g1.num_nodes(), 3); // s shared
        assert_eq!(g1.num_edges(), 2);
        let b = g1.alphabet().symbol('b').unwrap();
        assert!(g1.has_edge(g1.node("y").unwrap(), b, g1.node("s").unwrap()));
    }

    #[test]
    fn edges_iteration() {
        let g = sample();
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn extended_alphabet_preserves_edges() {
        let g = sample();
        let mut bigger = g.alphabet().clone();
        let c = bigger.intern('c');
        let g2 = g.with_extended_alphabet(&bigger);
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.alphabet().len(), 3);
        let a = g2.alphabet().symbol('a').unwrap();
        assert!(g2.has_edge(0, a, 1));
        // symbol ids may differ; 'c' exists but labels no edge
        assert!(g2.edges().all(|e| e.label != c));
    }

    #[test]
    #[should_panic(expected = "misses edge label")]
    fn shrunk_alphabet_panics() {
        let g = sample(); // uses a and b
        let smaller = Alphabet::ascii_lower(1);
        let _ = g.with_extended_alphabet(&smaller);
    }
}
