//! Paths and reachability.
//!
//! A path of a graph database from `v₀` to `v_n` of length `n ≥ 0` is a
//! (possibly empty) sequence of edges `(v₀,a₁,v₁)…(v_{n−1},a_n,v_n)`; its
//! label is `a₁⋯a_n ∈ A*` (ε for the empty path). “There is always an empty
//! path from `v` to `v` for any `v ∈ V`” (§2).

use crate::db::{Edge, GraphDb, NodeId};
use ecrpq_automata::{BitSet, Nfa, Symbol};
use std::collections::VecDeque;

/// A concrete path in a graph database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    start: NodeId,
    edges: Vec<Edge>,
}

impl Path {
    /// The empty path at `v`.
    pub fn empty(v: NodeId) -> Self {
        Path {
            start: v,
            edges: Vec::new(),
        }
    }

    /// Builds a path from consecutive edges.
    ///
    /// # Panics
    /// Panics if the edges are not consecutive.
    pub fn from_edges(start: NodeId, edges: Vec<Edge>) -> Self {
        let mut at = start;
        for e in &edges {
            assert_eq!(e.src, at, "non-consecutive path edges");
            at = e.dst;
        }
        Path { start, edges }
    }

    /// The first vertex.
    pub fn source(&self) -> NodeId {
        self.start
    }

    /// The last vertex.
    pub fn target(&self) -> NodeId {
        self.edges.last().map_or(self.start, |e| e.dst)
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The label `a₁⋯a_n` of the path.
    pub fn label(&self) -> Vec<Symbol> {
        self.edges.iter().map(|e| e.label).collect()
    }

    /// The edges of the path.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Appends an edge.
    ///
    /// # Panics
    /// Panics if `e.src` is not the current target.
    pub fn push(&mut self, e: Edge) {
        assert_eq!(e.src, self.target());
        self.edges.push(e);
    }

    /// Checks that the path exists in `db`.
    pub fn is_valid_in(&self, db: &GraphDb) -> bool {
        self.edges
            .iter()
            .all(|e| db.has_edge(e.src, e.label, e.dst))
    }
}

/// All vertices reachable from `v` (by any path, including the empty one).
pub fn reachable_from(db: &GraphDb, v: NodeId) -> BitSet {
    let mut seen = BitSet::new(db.num_nodes());
    let mut stack = vec![v];
    seen.insert(v as usize);
    while let Some(u) = stack.pop() {
        for &(_, t) in db.out_edges(u) {
            if seen.insert(t as usize) {
                stack.push(t);
            }
        }
    }
    seen
}

/// Finds a shortest path from `src` to `dst` whose label is accepted by
/// `lang`, via BFS over the product `D × A_lang`; returns `None` if no such
/// path exists.
///
/// This is the witness-producing version of the polynomial-time `R_L`
/// relation of Corollary 2.4 in the paper.
pub fn shortest_path_in_language(
    db: &GraphDb,
    src: NodeId,
    dst: NodeId,
    lang: &Nfa<Symbol>,
) -> Option<Path> {
    let nfa = lang.remove_epsilon();
    let nq = nfa.num_states();
    let nv = db.num_nodes();
    // product state = v * nq + q
    let idx = |v: NodeId, q: u32| v as usize * nq + q as usize;
    let mut parent: Vec<Option<(usize, Edge)>> = vec![None; nv * nq];
    let mut seen = BitSet::new(nv * nq);
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for &q in nfa.initial_states() {
        if seen.insert(idx(src, q)) {
            queue.push_back((src, q));
        }
    }
    let mut goal: Option<(NodeId, u32)> = None;
    while let Some((v, q)) = queue.pop_front() {
        if v == dst && nfa.is_final(q) {
            goal = Some((v, q));
            break;
        }
        for &(label, t) in db.out_edges(v) {
            for (s, q2) in nfa.transitions_from(q) {
                if *s == label && seen.insert(idx(t, *q2)) {
                    parent[idx(t, *q2)] = Some((
                        idx(v, q),
                        Edge {
                            src: v,
                            label,
                            dst: t,
                        },
                    ));
                    queue.push_back((t, *q2));
                }
            }
        }
    }
    let (v, q) = goal?;
    let mut cur = idx(v, q);
    let mut edges = Vec::new();
    while let Some((prev, e)) = parent[cur] {
        edges.push(e);
        cur = prev;
    }
    edges.reverse();
    Some(Path::from_edges(src, edges))
}

/// The relation `R_L = {(v, v′) : some path from v to v′ has label in L}`
/// (Corollary 2.4), computed in polynomial time for all pairs: for each
/// source vertex, a product-graph BFS.
pub fn language_reachability(db: &GraphDb, lang: &Nfa<Symbol>) -> Vec<(NodeId, NodeId)> {
    let nfa = lang.remove_epsilon();
    let nq = nfa.num_states();
    let nv = db.num_nodes();
    let mut pairs = Vec::new();
    for src in 0..nv as NodeId {
        let mut seen = BitSet::new(nv * nq);
        let mut stack: Vec<(NodeId, u32)> = Vec::new();
        for &q in nfa.initial_states() {
            if seen.insert(src as usize * nq + q as usize) {
                stack.push((src, q));
            }
        }
        let mut targets = BitSet::new(nv);
        while let Some((v, q)) = stack.pop() {
            if nfa.is_final(q) {
                targets.insert(v as usize);
            }
            for &(label, t) in db.out_edges(v) {
                for (s, q2) in nfa.transitions_from(q) {
                    if *s == label && seen.insert(t as usize * nq + *q2 as usize) {
                        stack.push((t, *q2));
                    }
                }
            }
        }
        for t in targets.iter() {
            pairs.push((src, t as NodeId));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::Regex;

    fn line() -> GraphDb {
        // u -a-> v -b-> w -a-> x, plus u -b-> w
        let mut g = GraphDb::new();
        let u = g.add_node("u");
        let v = g.add_node("v");
        let w = g.add_node("w");
        let x = g.add_node("x");
        g.add_edge(u, 'a', v);
        g.add_edge(v, 'b', w);
        g.add_edge(w, 'a', x);
        g.add_edge(u, 'b', w);
        g
    }

    #[test]
    fn empty_path_semantics() {
        let p = Path::empty(3);
        assert_eq!(p.source(), 3);
        assert_eq!(p.target(), 3);
        assert_eq!(p.label(), Vec::<Symbol>::new());
        assert!(p.is_empty());
    }

    #[test]
    fn path_construction_and_label() {
        let g = line();
        let a = g.alphabet().symbol('a').unwrap();
        let b = g.alphabet().symbol('b').unwrap();
        let p = Path::from_edges(
            0,
            vec![
                Edge {
                    src: 0,
                    label: a,
                    dst: 1,
                },
                Edge {
                    src: 1,
                    label: b,
                    dst: 2,
                },
            ],
        );
        assert_eq!(p.label(), vec![a, b]);
        assert_eq!(p.target(), 2);
        assert!(p.is_valid_in(&g));
    }

    #[test]
    #[should_panic(expected = "non-consecutive")]
    fn non_consecutive_path_panics() {
        let _ = Path::from_edges(
            0,
            vec![
                Edge {
                    src: 0,
                    label: 0,
                    dst: 1,
                },
                Edge {
                    src: 2,
                    label: 0,
                    dst: 3,
                },
            ],
        );
    }

    #[test]
    fn reachability() {
        let g = line();
        let r = reachable_from(&g, g.node("u").unwrap());
        assert_eq!(r.len(), 4);
        let r2 = reachable_from(&g, g.node("w").unwrap());
        assert_eq!(r2.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn shortest_path_with_language() {
        let mut g = line();
        let lang = Regex::compile_str("ab", g.alphabet_mut()).unwrap();
        let p = shortest_path_in_language(&g, 0, 2, &lang).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(g.alphabet().decode(&p.label()), "ab");
        // no path with label 'aa' from u
        let lang2 = Regex::compile_str("aa", g.alphabet_mut()).unwrap();
        assert!(shortest_path_in_language(&g, 0, 2, &lang2).is_none());
        // empty-word path: u to u with (ab)?
        let lang3 = Regex::compile_str("(ab)?", g.alphabet_mut()).unwrap();
        let p3 = shortest_path_in_language(&g, 0, 0, &lang3).unwrap();
        assert!(p3.is_empty());
    }

    #[test]
    fn language_reachability_pairs() {
        let mut g = line();
        let lang = Regex::compile_str("a|b", g.alphabet_mut()).unwrap();
        let mut pairs = language_reachability(&g, &lang);
        pairs.sort();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
        // star includes self-pairs
        let star = Regex::compile_str("(a|b)*", g.alphabet_mut()).unwrap();
        let pairs = language_reachability(&g, &star);
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(3, 0)));
    }
}
