#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The hardness reductions of §5 of the paper, implemented as *instance
//! generators* with independently-checkable semantics.
//!
//! * [`oracle`] — a direct solver for (parameterized) intersection
//!   non-emptiness of regular languages (IE / p-IE, §2.1), used as the
//!   ground truth the reductions are differential-tested against;
//! * [`lemma51`] — IE → eval-ECRPQ(C) for classes with unbounded
//!   `cc_vertex + cc_hedge` (PSPACE-hardness, Theorem 3.2(1)), cases (1)
//!   big component and (2) high-degree vertex;
//! * [`lemma54`] — p-IE → p-eval-ECRPQ(C) for classes with unbounded
//!   `cc_vertex` (XNL-hardness, Theorem 3.1(1)), cases (a) bounded and (b)
//!   unbounded hyperedge size;
//! * [`lemma53`] — `CQ_bin(C_collapse)` → p-eval-ECRPQ(C)
//!   (W\[1\]-hardness, Theorem 3.1(2)), with the binary-id-cycle database
//!   expansion.
//!
//! Each reduction returns a *(query, database)* pair whose satisfiability
//! provably equals that of the source instance; the integration tests
//! verify this equivalence on randomized instances using the evaluators of
//! `ecrpq-core`.

pub mod lemma51;
pub mod lemma53;
pub mod lemma54;
pub mod markers;
pub mod oracle;

pub use lemma51::{ine_to_ecrpq, ine_to_ecrpq_big_component, ine_to_ecrpq_high_degree};
pub use lemma53::{cq_to_ecrpq, CollapseCq};
pub use lemma54::{pie_to_ecrpq, pie_to_ecrpq_chain, pie_to_ecrpq_wide};
pub use oracle::{intersection_nonempty, intersection_witness, intersection_witness_dfas};
