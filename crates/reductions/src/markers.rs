//! Shared machinery of the §5 hardness reductions: the marker database
//! `D = D₁ ∪ ⋯ ∪ D_m` and the marker relations.
//!
//! Both Lemma 5.1 (case 1) and Lemma 5.4 hinge on the same gadget. The
//! database glues, on a distinguished vertex `s`, one sub-database `Dᵢ`
//! per language `Lᵢ`: the transition graph of `Lᵢ`'s NFA, an entry edge
//! `s →$ init`, and for every final state a `#`-chain of length `i`
//! followed by a `$` back to `s`. A cycle at `s` reading `$ u #^i $` must
//! then thread `Dᵢ` entirely, certifying `u ∈ Lᵢ`:
//!
//! * the first `$` can only be an entry edge (only `s` has outgoing `$`);
//! * `u ∈ A*` stays inside `Dᵢ`'s NFA copy (no `A`-edges elsewhere);
//! * `#` edges exist only from final states into the chain, whose length
//!   is exactly `i`, and the closing `$` exists only at the chain's end.
//!
//! [`marker_relation`] is the synchronous relation forcing selected tracks
//! to read `$ u #^{i_j} $` *with a shared `u`*, leaving the remaining
//! tracks unconstrained — arbitrary words over the extended alphabet.

use ecrpq_automata::{relations, Alphabet, Nfa, Row, StateId, Symbol, SyncRel, Track};
use ecrpq_graph::GraphDb;

/// The marker database together with the interned marker symbols.
pub struct MarkerDb {
    /// The glued database `D₁ ∪ ⋯ ∪ D_m` (shared vertex `s` has id 0).
    pub db: GraphDb,
    /// The extended alphabet `B = A ∪ {#, $}`.
    pub alphabet: Alphabet,
    /// The `#` marker.
    pub hash: Symbol,
    /// The `$` marker.
    pub dollar: Symbol,
}

/// Builds the marker database for the given languages (1-based indices:
/// `langs[i]` becomes `D_{i+1}` with a `#`-chain of length `i+1`).
pub fn build_marker_db(langs: &[Nfa<Symbol>], alphabet: &Alphabet) -> MarkerDb {
    let mut b = alphabet.clone();
    let hash = b.intern('#');
    let dollar = b.intern('$');
    let mut db = GraphDb::with_alphabet(b.clone());
    let s = db.add_node("s");
    for (i, lang) in langs.iter().enumerate() {
        let idx = i + 1;
        let nfa = lang.remove_epsilon();
        // materialize all states up front so ids are stable
        let nodes: Vec<_> = (0..nfa.num_states())
            .map(|q| db.add_node(&format!("A{idx}_q{q}")))
            .collect();
        for q in 0..nfa.num_states() as StateId {
            for (sym, to) in nfa.transitions_from(q) {
                db.add_edge_sym(nodes[q as usize], *sym, nodes[*to as usize]);
            }
        }
        for &q0 in nfa.initial_states() {
            db.add_edge_sym(s, dollar, nodes[q0 as usize]);
        }
        let chain: Vec<_> = (1..=idx)
            .map(|t| db.add_node(&format!("A{idx}_c{t}")))
            .collect();
        for w in chain.windows(2) {
            db.add_edge_sym(w[0], hash, w[1]);
        }
        // lint:allow(unwrap): chain always holds the start vertex
        db.add_edge_sym(*chain.last().unwrap(), dollar, s);
        for qf in nfa.final_states() {
            db.add_edge_sym(nodes[qf as usize], hash, chain[0]);
        }
    }
    MarkerDb {
        db,
        alphabet: b,
        hash,
        dollar,
    }
}

/// The marker relation of arity `arity`: tuples where, for every
/// `(track, i)` in `constrained`, that track reads `$ u #^i $` — all with
/// the **same** `u ∈ A*` — and every other track reads an arbitrary word
/// over the extended alphabet.
///
/// `a_syms` are the symbols of the base alphabet `A` (markers excluded).
/// Polynomial size: `O(max i)` stages times `(|B|+1)^{#free}` row options.
///
/// # Panics
/// Panics if `constrained` is empty, repeats a track, or uses an index 0.
pub fn marker_relation(
    arity: usize,
    constrained: &[(usize, usize)],
    a_syms: &[Symbol],
    hash: Symbol,
    dollar: Symbol,
    num_b: usize,
) -> SyncRel {
    assert!(!constrained.is_empty());
    assert!(constrained.iter().all(|&(t, i)| t < arity && i >= 1));
    {
        let mut tracks: Vec<usize> = constrained.iter().map(|&(t, _)| t).collect();
        tracks.sort_unstable();
        tracks.dedup();
        assert_eq!(tracks.len(), constrained.len(), "repeated track");
    }
    let idx_of: Vec<Option<usize>> = (0..arity)
        .map(|t| {
            constrained
                .iter()
                .find(|&&(tt, _)| tt == t)
                .map(|&(_, i)| i)
        })
        .collect();
    // lint:allow(unwrap): constrained is non-empty: every word has a track
    let max_idx = constrained.iter().map(|&(_, i)| i).max().unwrap();
    // free-track options: any symbol of B, or ⊥
    let free_opts: Vec<Track> = (0..num_b as Symbol)
        .map(Track::Sym)
        .chain([Track::Pad])
        .collect();

    // stage templates for the constrained tracks:
    //   stage 0: '$'; stage "w": each a ∈ A; stage t ∈ 1..=max_idx+1:
    //   '#' while t ≤ i, '$' at t = i+1, '⊥' after; stage "done": '⊥'.
    let constrained_row = |f: &dyn Fn(usize) -> Track| -> Vec<Option<Track>> {
        (0..arity).map(|t| idx_of[t].map(f)).collect()
    };
    // states: 0 = pre-'$', 1 = reading u, 1+t for t in 1..=max_idx+1,
    // final = max_idx + 2, which loops for trailing free-track symbols.
    let final_state = (max_idx + 2) as StateId;
    let mut nfa: Nfa<Row> = Nfa::with_states(max_idx + 3);
    nfa.set_initial(0);
    nfa.set_final(final_state);

    let mut add_rows = |from: StateId, to: StateId, template: Vec<Option<Track>>| {
        // expand None (free) slots over all options
        let mut rows: Vec<Row> = vec![Vec::with_capacity(arity)];
        for slot in &template {
            match slot {
                Some(t) => rows.iter_mut().for_each(|r| r.push(*t)),
                None => {
                    let mut next = Vec::with_capacity(rows.len() * free_opts.len());
                    for r in &rows {
                        for &o in &free_opts {
                            let mut r2 = r.clone();
                            r2.push(o);
                            next.push(r2);
                        }
                    }
                    rows = next;
                }
            }
        }
        for row in rows {
            if row.iter().all(|t| t.is_pad()) {
                continue;
            }
            nfa.add_transition(from, row, to);
        }
    };

    add_rows(0, 1, constrained_row(&|_| Track::Sym(dollar)));
    for &a in a_syms {
        add_rows(1, 1, constrained_row(&|_| Track::Sym(a)));
    }
    for t in 1..=(max_idx + 1) {
        let from = if t == 1 { 1 } else { t as StateId };
        let template = constrained_row(&|i| {
            if t <= i {
                Track::Sym(hash)
            } else if t == i + 1 {
                Track::Sym(dollar)
            } else {
                Track::Pad
            }
        });
        add_rows(from, (t + 1) as StateId, template);
    }
    // trailing free-track activity after all constrained tracks finished
    add_rows(final_state, final_state, constrained_row(&|_| Track::Pad));

    if constrained.len() == arity {
        // no free tracks: the construction is already pad-valid
        SyncRel::from_nfa_unchecked(arity, num_b, nfa)
    } else {
        SyncRel::from_nfa(arity, num_b, nfa)
    }
}

/// A universal relation over the extended alphabet (helper shared by the
/// reductions).
pub fn universal(arity: usize, num_b: usize) -> SyncRel {
    relations::universal(arity, num_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::Regex;

    #[test]
    fn marker_db_shape() {
        let mut a = Alphabet::ascii_lower(2);
        let l1 = Regex::compile_str("ab", &mut a).unwrap();
        let md = build_marker_db(&[l1], &a);
        assert_eq!(md.alphabet.len(), 4);
        // s + 3 NFA states (word_lang-ish from regex: concat of symbol langs
        // has 4 states + eps... after remove_epsilon trim is not applied, so
        // just check s and the chain exist
        assert!(md.db.node("s").is_some());
        assert!(md.db.node("A1_c1").is_some());
    }

    #[test]
    fn cycle_through_marker_db_reads_expected_word() {
        let mut a = Alphabet::ascii_lower(2);
        let l1 = Regex::compile_str("ab", &mut a).unwrap();
        let l2 = Regex::compile_str("a*", &mut a).unwrap();
        let md = build_marker_db(&[l1, l2], &a);
        let s = md.db.node("s").unwrap();
        // the word $ab#$ must label an s-cycle (through D1)
        let word: Vec<Symbol> = vec![
            md.dollar,
            md.alphabet.symbol('a').unwrap(),
            md.alphabet.symbol('b').unwrap(),
            md.hash,
            md.dollar,
        ];
        let lang = Nfa::word_lang(&word);
        assert!(ecrpq_graph::paths::shortest_path_in_language(&md.db, s, s, &lang).is_some());
        // $ab#$ through D2 impossible (chain length 2): $ab##$ neither (ab ∉ a*)
        let word2: Vec<Symbol> = vec![
            md.dollar,
            md.alphabet.symbol('a').unwrap(),
            md.alphabet.symbol('b').unwrap(),
            md.hash,
            md.hash,
            md.dollar,
        ];
        let lang2 = Nfa::word_lang(&word2);
        assert!(ecrpq_graph::paths::shortest_path_in_language(&md.db, s, s, &lang2).is_none());
        // $a##$ through D2 works (a ∈ a*)
        let word3: Vec<Symbol> = vec![
            md.dollar,
            md.alphabet.symbol('a').unwrap(),
            md.hash,
            md.hash,
            md.dollar,
        ];
        let lang3 = Nfa::word_lang(&word3);
        assert!(ecrpq_graph::paths::shortest_path_in_language(&md.db, s, s, &lang3).is_some());
    }

    #[test]
    fn marker_relation_all_constrained() {
        let a_syms = [0u8, 1];
        let r = marker_relation(2, &[(0, 1), (1, 2)], &a_syms, 2, 3, 4);
        // tracks: $u#$ and $u##$, shared u (symbols: hash=2, dollar=3)
        let t0 = [3, 0, 1, 2, 3];
        let t1 = [3, 0, 1, 2, 2, 3];
        assert!(r.contains(&[&t0, &t1]));
        // different u
        let bad = [3, 1, 1, 2, 2, 3];
        assert!(!r.contains(&[&t0, &bad]));
        // wrong #-count
        assert!(!r.contains(&[&t1, &t1]));
        // empty u
        assert!(r.contains(&[&[3, 2, 3], &[3, 2, 2, 3]]));
    }

    #[test]
    fn marker_relation_with_free_track() {
        let a_syms = [0u8, 1];
        let r = marker_relation(3, &[(0, 1), (2, 2)], &a_syms, 2, 3, 4);
        let t0 = [3, 0, 2, 3];
        let t2 = [3, 0, 2, 2, 3];
        // middle track free: anything
        assert!(r.contains(&[&t0, &[], &t2]));
        assert!(r.contains(&[&t0, &[1, 1, 1, 1, 1, 1, 1, 1], &t2]));
        assert!(r.contains(&[&t0, &[3, 2], &t2]));
        // constrained tracks still checked
        assert!(!r.contains(&[&t2, &[], &t0]));
    }

    #[test]
    #[should_panic(expected = "repeated track")]
    fn repeated_constrained_track_panics() {
        marker_relation(2, &[(0, 1), (0, 2)], &[0u8], 1, 2, 3);
    }
}
