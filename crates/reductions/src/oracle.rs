//! Direct solver for intersection non-emptiness of regular languages.
//!
//! The IE problem (“given regular languages `L₁,…,L_n`, is `⋂ᵢ Lᵢ ≠ ∅`?”,
//! §2.1 of the paper) is PSPACE-complete; its parameterized version p-IE
//! (parameter = number of automata) is XNL-complete. This oracle computes
//! the answer — and a shortest witness word — by iterated product
//! construction with trimming; it is the ground truth for the §5
//! reductions and the driver of experiments E3/E5.

use ecrpq_automata::{Nfa, Symbol};

/// Returns a shortest word in `⋂ᵢ L(aᵢ)`, or `None` if the intersection is
/// empty.
///
/// # Panics
/// Panics if `automata` is empty (the empty intersection is `A*`, which
/// has no canonical alphabet here).
pub fn intersection_witness(automata: &[Nfa<Symbol>]) -> Option<Vec<Symbol>> {
    assert!(!automata.is_empty(), "intersection of zero languages");
    let mut acc = automata[0].trim();
    for a in &automata[1..] {
        if acc.is_empty() {
            return None;
        }
        acc = acc.intersect(a).trim();
    }
    acc.shortest_word()
}

/// Convenience: non-emptiness of the intersection.
pub fn intersection_nonempty(automata: &[Nfa<Symbol>]) -> bool {
    intersection_witness(automata).is_some()
}

/// The textbook p-IE algorithm on *DFAs* (the problem's literal input
/// format): BFS over the `|Q₁| × ⋯ × |Q_k|` product state space, returning
/// a shortest common word. This is the `|Q|^k` procedure whose
/// parameterized cost the XNL classification captures.
///
/// # Panics
/// Panics if `dfas` is empty or the alphabets differ.
pub fn intersection_witness_dfas(dfas: &[ecrpq_automata::Dfa<Symbol>]) -> Option<Vec<Symbol>> {
    use std::collections::{HashMap, VecDeque};
    assert!(!dfas.is_empty(), "intersection of zero languages");
    let alphabet = dfas[0].alphabet().to_vec();
    for d in dfas {
        assert_eq!(d.alphabet(), alphabet.as_slice(), "alphabet mismatch");
    }
    let start: Vec<u32> = dfas.iter().map(|d| d.initial()).collect();
    let accepting = |t: &[u32]| dfas.iter().zip(t).all(|(d, &q)| d.is_final(q));
    let mut parent: HashMap<Vec<u32>, (Vec<u32>, Symbol)> = HashMap::new();
    let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
    queue.push_back(start.clone());
    parent.insert(start.clone(), (Vec::new(), 0));
    let mut goal: Option<Vec<u32>> = None;
    'bfs: while let Some(t) = queue.pop_front() {
        if accepting(&t) {
            goal = Some(t);
            break 'bfs;
        }
        for (ai, &a) in alphabet.iter().enumerate() {
            let next: Vec<u32> = dfas
                .iter()
                .zip(&t)
                .map(|(d, &q)| d.step_index(q, ai))
                .collect();
            if !parent.contains_key(&next) {
                parent.insert(next.clone(), (t.clone(), a));
                queue.push_back(next);
            }
        }
    }
    let mut cur = goal?;
    let mut word = Vec::new();
    while cur != start {
        let (prev, a) = parent[&cur].clone();
        word.push(a);
        cur = prev;
    }
    word.reverse();
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::{Alphabet, Regex};

    fn nfa(re: &str, alphabet: &mut Alphabet) -> Nfa<Symbol> {
        Regex::compile_str(re, alphabet).unwrap()
    }

    #[test]
    fn nonempty_intersection() {
        let mut a = Alphabet::ascii_lower(2);
        let l1 = nfa("a*b", &mut a);
        let l2 = nfa("(a|b)*b", &mut a);
        let l3 = nfa("ab*", &mut a);
        let w = intersection_witness(&[l1, l2, l3]).unwrap();
        assert_eq!(a.decode(&w), "ab");
    }

    #[test]
    fn empty_intersection() {
        let mut a = Alphabet::ascii_lower(2);
        let l1 = nfa("a+", &mut a);
        let l2 = nfa("b+", &mut a);
        assert!(intersection_witness(&[l1, l2]).is_none());
    }

    #[test]
    fn single_language() {
        let mut a = Alphabet::ascii_lower(2);
        let l = nfa("aab", &mut a);
        assert_eq!(intersection_witness(&[l]).unwrap().len(), 3);
    }

    #[test]
    fn witness_is_shortest() {
        let mut a = Alphabet::ascii_lower(2);
        // L1 = words of even length, L2 = words with at least one b
        let l1 = nfa("((a|b)(a|b))*", &mut a);
        let l2 = nfa("(a|b)*b(a|b)*", &mut a);
        let w = intersection_witness(&[l1, l2]).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn dfa_oracle_agrees_with_nfa_oracle() {
        // mod-2 and mod-3 counters over {a}: shortest common nonempty...
        // both accept ε at state 0, so shortest = ε; shift finals to test
        let d1 = ecrpq_automata::Dfa::from_parts(vec![0u8], vec![vec![1], vec![0]], 0, [1]);
        let d2 =
            ecrpq_automata::Dfa::from_parts(vec![0u8], vec![vec![1], vec![2], vec![0]], 0, [1]);
        // lengths ≡1 mod 2 and ≡1 mod 3 → shortest 1
        let w = intersection_witness_dfas(&[d1.clone(), d2.clone()]).unwrap();
        assert_eq!(w.len(), 1);
        let via_nfa = intersection_witness(&[d1.to_nfa(), d2.to_nfa()]).unwrap();
        assert_eq!(w.len(), via_nfa.len());
        // empty case: ≡1 mod 2 ∧ ≡0 mod 2
        let d3 = ecrpq_automata::Dfa::from_parts(vec![0u8], vec![vec![1], vec![0]], 0, [0]);
        assert!(intersection_witness_dfas(&[d1, d3]).is_none());
    }

    #[test]
    fn modulo_intersection_forces_lcm() {
        let mut a = Alphabet::ascii_lower(1);
        // a^(2k) ∩ a^(3k), nonempty words: shortest nonempty common length 6 — but ε is in both!
        let l1 = nfa("(aa)*", &mut a);
        let l2 = nfa("(aaa)*", &mut a);
        assert_eq!(
            intersection_witness(&[l1.clone(), l2.clone()]).unwrap(),
            vec![]
        );
        // exclude ε: a(aa)* ∩ a(aaa)*? lengths odd ∩ ≡1 mod 3 → 1, 7, ...
        let l3 = nfa("a(aa)*", &mut a);
        let l4 = nfa("a(aaa)*", &mut a);
        let w = intersection_witness(&[l3, l4]).unwrap();
        assert_eq!(w.len(), 1);
    }
}
