//! Lemma 5.3: `CQ_bin(C_collapse)` → p-eval-ECRPQ(C), the W\[1\]-hardness
//! transfer of Theorem 3.1(2).
//!
//! A binary CQ whose multigraph is `G^collapse` has the bipartite shape
//! `⋀ᵢ Rᵢ(xᵢ, yᵢ) ∧ R′ᵢ(yᵢ, x′ᵢ)` where the `y`'s are component
//! variables. The reduction encodes the choice of `yᵢ`'s value as a word:
//! the database `D̂` extends `D`'s “edge graph” with, at every element
//! `vⱼ`, a simple cycle reading the `⌈log n⌉`-bit binary expansion of `j`;
//! the relation for a hyperedge forces each of its tracks to read
//! `Rᵢ · w · R′ᵢ` with a *shared* `w ∈ {0,1}⁺` — the paths agree on the
//! middle element, which is exactly the CQ's join on the component
//! variable.

use ecrpq_automata::{Alphabet, Nfa, Row, Symbol, SyncRel, Track};
use ecrpq_graph::GraphDb;
use ecrpq_query::{Cq, Ecrpq, PathVar, RelationalDb};
use ecrpq_structure::TwoLevelGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// A `CQ_bin` structured over a 2L graph's collapse: for each first-level
/// edge `e` of `graph` with `η(e) = (x, x′)` and component variable `y`,
/// the CQ contains `rels[e].0(x, y) ∧ rels[e].1(y, x′)`.
#[derive(Debug, Clone)]
pub struct CollapseCq {
    /// The 2L graph `G`.
    pub graph: TwoLevelGraph,
    /// Per first-level edge: the two relation names `(Rᵢ, R′ᵢ)`.
    pub rels: Vec<(String, String)>,
}

impl CollapseCq {
    /// The explicit CQ over `G^collapse`: variables `0..V` are node
    /// variables, `V..V+C` are component variables.
    pub fn to_cq(&self) -> Cq {
        let comps = self.graph.rel_components();
        let mut q = Cq::new(self.graph.num_vertices() + comps.edges.len());
        for e in 0..self.graph.num_edges() {
            let (x, x2) = self.graph.edge(e);
            let y = self.graph.num_vertices() + comps.comp_of_edge[e];
            q.atom(&self.rels[e].0, &[x, y]);
            q.atom(&self.rels[e].1, &[y, x2]);
        }
        q
    }
}

/// The Lemma 5.3 reduction: builds an ECRPQ with abstraction
/// `collapse_cq.graph` and the expanded graph database `D̂` such that
/// `D ⊨ q ⟺ D̂ ⊨ q_G`.
///
/// # Panics
/// Panics if a referenced relation is missing from `db` or not binary, or
/// if `db` has an empty domain.
pub fn cq_to_ecrpq(collapse_cq: &CollapseCq, db: &RelationalDb) -> (Ecrpq, GraphDb) {
    let g = &collapse_cq.graph;
    assert_eq!(g.num_edges(), collapse_cq.rels.len());
    let n = db.domain_size();
    assert!(n > 0, "empty domain");
    for (r, r2) in &collapse_cq.rels {
        for name in [r, r2] {
            let rel = db
                .relation(name)
                .unwrap_or_else(|| panic!("relation {name} missing"));
            assert_eq!(rel.arity, 2, "relation {name} must be binary");
        }
    }

    // Alphabet: one symbol per relation name used, plus '0' and '1'.
    let mut alphabet = Alphabet::new();
    let zero = alphabet.intern('0');
    let one = alphabet.intern('1');
    let mut rel_sym: HashMap<String, Symbol> = HashMap::new();
    // deterministic order: sort the names
    let mut names: Vec<String> = collapse_cq
        .rels
        .iter()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    names.sort();
    names.dedup();
    let mut next_char = 'A';
    for name in &names {
        let sym = alphabet.intern(next_char);
        rel_sym.insert(name.clone(), sym);
        // lint:allow(unwrap): bounded by the relation count, far below char::MAX
        next_char = char::from_u32(next_char as u32 + 1).expect("alphabet exhausted");
    }

    // --- D̂: element vertices + binary-id cycles + relation edges.
    // `bits` = ⌈log₂ n⌉, at least 1, so ids are distinct non-empty words.
    let bits = {
        let mut b = 1;
        while (1usize << b) < n {
            b += 1;
        }
        b
    };
    let mut gdb = GraphDb::with_alphabet(alphabet.clone());
    let elems: Vec<_> = (0..n).map(|i| gdb.add_node(&format!("v{i}"))).collect();
    for (i, &v) in elems.iter().enumerate() {
        // simple cycle reading the `bits`-bit binary expansion of i
        let mut cur = v;
        for b in (0..bits).rev() {
            let bit = if (i >> b) & 1 == 1 { one } else { zero };
            let next = if b == 0 {
                v
            } else {
                gdb.add_node(&format!("v{i}_c{b}"))
            };
            gdb.add_edge_sym(cur, bit, next);
            cur = next;
        }
    }
    for name in &names {
        let sym = rel_sym[name];
        // lint:allow(unwrap): names comes from the database's own relation list
        for t in &db.relation(name).unwrap().tuples {
            gdb.add_edge_sym(elems[t[0] as usize], sym, elems[t[1] as usize]);
        }
    }

    // --- q_G: abstraction G; one relation per hyperedge.
    let num_b = alphabet.len();
    let mut q = Ecrpq::new(alphabet.clone());
    let node_vars: Vec<_> = (0..g.num_vertices())
        .map(|v| q.node_var(&format!("x{v}")))
        .collect();
    let path_vars: Vec<PathVar> = (0..g.num_edges())
        .map(|e| {
            let (src, dst) = g.edge(e);
            q.path_atom(node_vars[src], &format!("p{e}"), node_vars[dst])
        })
        .collect();
    for h in 0..g.num_hyperedges() {
        let members = g.hyperedge(h);
        let args: Vec<PathVar> = members.iter().map(|&e| path_vars[e]).collect();
        let first: Vec<Symbol> = members
            .iter()
            .map(|&e| rel_sym[&collapse_cq.rels[e].0])
            .collect();
        let last: Vec<Symbol> = members
            .iter()
            .map(|&e| rel_sym[&collapse_cq.rels[e].1])
            .collect();
        let rel = sandwich_relation(&first, &last, zero, one, num_b);
        q.rel_atom(&format!("H{h}"), Arc::new(rel), &args);
    }
    // Path variables in hyperedge-free components still need the sandwich
    // constraint (their component variable must be joined too): give each a
    // unary sandwich atom.
    let comps = g.rel_components();
    for (c, edge_list) in comps.edges.iter().enumerate() {
        if !comps.hedges[c].is_empty() {
            continue;
        }
        for &e in edge_list {
            let first = [rel_sym[&collapse_cq.rels[e].0]];
            let last = [rel_sym[&collapse_cq.rels[e].1]];
            let rel = sandwich_relation(&first, &last, zero, one, num_b);
            q.rel_atom(&format!("S{e}"), Arc::new(rel), &[path_vars[e]]);
        }
    }
    (q, gdb)
}

/// The relation `{(first₁·w·last₁, …, first_k·w·last_k) : w ∈ {0,1}⁺}`.
fn sandwich_relation(
    first: &[Symbol],
    last: &[Symbol],
    zero: Symbol,
    one: Symbol,
    num_symbols: usize,
) -> SyncRel {
    let k = first.len();
    debug_assert_eq!(last.len(), k);
    // states: 0 → (first) → 1 → bit → 2 → bit* → 2 → (last) → 3(final)
    let mut nfa: Nfa<Row> = Nfa::with_states(4);
    nfa.set_initial(0);
    nfa.set_final(3);
    nfa.add_transition(0, first.iter().map(|&s| Track::Sym(s)).collect(), 1);
    for &b in &[zero, one] {
        nfa.add_transition(1, vec![Track::Sym(b); k], 2);
        nfa.add_transition(2, vec![Track::Sym(b); k], 2);
    }
    nfa.add_transition(2, last.iter().map(|&s| Track::Sym(s)).collect(), 3);
    SyncRel::from_nfa_unchecked(k, num_symbols, nfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_core::cq_eval::eval_cq;
    use ecrpq_core::{eval_product, PreparedQuery};

    /// Checks `D ⊨ q ⟺ D̂ ⊨ q_G` with independent evaluators.
    fn check_equiv(cq: &CollapseCq, db: &RelationalDb) {
        let expected = eval_cq(db, &cq.to_cq());
        let (q, gdb) = cq_to_ecrpq(cq, db);
        q.validate().unwrap();
        let prepared = PreparedQuery::build(&q).unwrap();
        let actual = eval_product(&gdb, &prepared);
        assert_eq!(actual, expected, "Lemma 5.3 equivalence failed");
    }

    /// 2L graph: two edges sharing a hyperedge (one component).
    fn pair_graph() -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        g.add_hyperedge(&[e0, e1]);
        g
    }

    fn db_with(r_tuples: &[(u32, u32)], s_tuples: &[(u32, u32)], n: usize) -> RelationalDb {
        let mut db = RelationalDb::new(n);
        db.declare("R", 2);
        db.declare("S", 2);
        for &(a, b) in r_tuples {
            db.insert("R", &[a, b]);
        }
        for &(a, b) in s_tuples {
            db.insert("S", &[a, b]);
        }
        db
    }

    #[test]
    fn satisfiable_instance() {
        // CQ: R(x0,y) ∧ S(y,x1) ∧ R(x1,y') ∧ S(y',x2) — same component for
        // both edges, so y = y' is shared.
        let cq = CollapseCq {
            graph: pair_graph(),
            rels: vec![("R".into(), "S".into()), ("R".into(), "S".into())],
        };
        // R(0,1), S(1,2), R(2,1), S(1,0): x0=0,y=1,x1=2, then R(2,1),S(1,?)=0 ✓
        let db = db_with(&[(0, 1), (2, 1)], &[(1, 2), (1, 0)], 3);
        check_equiv(&cq, &db);
        // ensure it is indeed satisfiable
        assert!(eval_cq(&db, &cq.to_cq()));
    }

    #[test]
    fn unsatisfiable_instance() {
        let cq = CollapseCq {
            graph: pair_graph(),
            rels: vec![("R".into(), "S".into()), ("R".into(), "S".into())],
        };
        // R goes only into 1, S leaves only from 2: no shared middle
        let db = db_with(&[(0, 1)], &[(2, 0)], 3);
        assert!(!eval_cq(&db, &cq.to_cq()));
        check_equiv(&cq, &db);
    }

    #[test]
    fn component_join_is_enforced() {
        // Two edges in ONE component must share the middle element; make an
        // instance where each edge is individually satisfiable but only via
        // different middles.
        let cq = CollapseCq {
            graph: pair_graph(),
            rels: vec![("R".into(), "S".into()), ("T".into(), "U".into())],
        };
        let mut db = RelationalDb::new(4);
        // edge0: R(0,1), S(1,2) — middle 1; edge1: T(2,3), U(3,0) — middle 3
        db.insert("R", &[0, 1]);
        db.insert("S", &[1, 2]);
        db.insert("T", &[2, 3]);
        db.insert("U", &[3, 0]);
        assert!(!eval_cq(&db, &cq.to_cq())); // y shared: impossible
        check_equiv(&cq, &db);
        // now allow a shared middle
        db.insert("T", &[2, 1]);
        db.insert("U", &[1, 0]);
        assert!(eval_cq(&db, &cq.to_cq()));
        check_equiv(&cq, &db);
    }

    #[test]
    fn separate_components_join_independently() {
        // two edges in separate singleton-hyperedge components: middles free
        let mut g = TwoLevelGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        g.add_hyperedge(&[e0]);
        g.add_hyperedge(&[e1]);
        let cq = CollapseCq {
            graph: g,
            rels: vec![("R".into(), "S".into()), ("T".into(), "U".into())],
        };
        let mut db = RelationalDb::new(4);
        db.insert("R", &[0, 1]);
        db.insert("S", &[1, 2]);
        db.insert("T", &[2, 3]);
        db.insert("U", &[3, 0]);
        assert!(eval_cq(&db, &cq.to_cq()));
        check_equiv(&cq, &db);
    }

    #[test]
    fn hyperedge_free_edges_get_sandwich_atoms() {
        let mut g = TwoLevelGraph::new(2);
        g.add_edge(0, 1); // no hyperedge at all
        let cq = CollapseCq {
            graph: g,
            rels: vec![("R".into(), "S".into())],
        };
        let mut db = RelationalDb::new(2);
        db.insert("R", &[0, 1]);
        db.insert("S", &[1, 1]);
        assert!(eval_cq(&db, &cq.to_cq()));
        check_equiv(&cq, &db);
        // and unsatisfiable without the S tuple from the middle
        let mut db2 = RelationalDb::new(2);
        db2.insert("R", &[0, 1]);
        db2.insert("S", &[0, 1]);
        assert!(!eval_cq(&db2, &cq.to_cq()));
        check_equiv(&cq, &db2);
    }

    #[test]
    fn single_element_domain() {
        let mut g = TwoLevelGraph::new(1);
        let e = g.add_edge(0, 0);
        g.add_hyperedge(&[e]);
        let cq = CollapseCq {
            graph: g,
            rels: vec![("R".into(), "R".into())],
        };
        let mut db = RelationalDb::new(1);
        db.insert("R", &[0, 0]);
        check_equiv(&cq, &db);
        let mut db2 = RelationalDb::new(1);
        db2.declare("R", 2);
        check_equiv(&cq, &db2);
    }

    #[test]
    fn larger_random_style_instance() {
        // triangle-ish 2L graph, 3 edges in one component
        let mut g = TwoLevelGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let e2 = g.add_edge(2, 0);
        g.add_hyperedge(&[e0, e1]);
        g.add_hyperedge(&[e1, e2]);
        let cq = CollapseCq {
            graph: g,
            rels: vec![
                ("R".into(), "S".into()),
                ("R".into(), "S".into()),
                ("R".into(), "S".into()),
            ],
        };
        // build a db where element 2 is a universal middle
        let mut db = RelationalDb::new(5);
        for x in 0..5u32 {
            db.insert("R", &[x, 2]);
            db.insert("S", &[2, x]);
        }
        check_equiv(&cq, &db);
        assert!(eval_cq(&db, &cq.to_cq()));
    }
}
