//! Lemma 5.1: intersection non-emptiness → eval-ECRPQ(C).
//!
//! Given regular languages `L₁,…,L_n` and a 2L graph `G` whose `G^rel` has
//! a “big” connected component — either (1) with `m ≥ n` vertices, or (2)
//! with a vertex incident to `n` hyperedges — we build, in polynomial time,
//! an ECRPQ with abstraction `G` and a graph database `D` such that
//! `D ⊨ q ⟺ L₁ ∩ ⋯ ∩ L_n ≠ ∅`. This is the PSPACE-hardness engine of
//! Theorem 3.2(1) and the workload generator of experiment E3.
//!
//! Case (1) forces the `i`-th path variable of the component to read
//! `$ u #^i $` with a *shared* `u` (the [`crate::markers`] gadget), so a
//! satisfying assignment certifies `u ∈ ⋂ᵢ Lᵢ`; case (2) pins the pivot
//! path variable's label inside every `Lᵢ` directly, on a one-vertex
//! database of self-loops.

use crate::markers::{build_marker_db, marker_relation};
use ecrpq_automata::{relations, Alphabet, Nfa, Symbol};
use ecrpq_graph::GraphDb;
use ecrpq_query::{Ecrpq, PathVar};
use ecrpq_structure::TwoLevelGraph;
use std::sync::Arc;

/// Adds node/path variables mirroring `g`'s first level to `q`.
fn scaffold_query(q: &mut Ecrpq, g: &TwoLevelGraph) -> Vec<PathVar> {
    let node_vars: Vec<_> = (0..g.num_vertices())
        .map(|v| q.node_var(&format!("x{v}")))
        .collect();
    (0..g.num_edges())
        .map(|e| {
            let (src, dst) = g.edge(e);
            q.path_atom(node_vars[src], &format!("p{e}"), node_vars[dst])
        })
        .collect()
}

/// Case (1) of Lemma 5.1: `G^rel` has a component with at least
/// `langs.len()` vertices (path variables).
///
/// `alphabet` is the languages' alphabet `A`; the construction extends it
/// with the markers `#` and `$`.
pub fn ine_to_ecrpq_big_component(
    langs: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    let n = langs.len();
    if n == 0 {
        return Err("need at least one language".into());
    }
    let comps = g.rel_components();
    // The component must contain hyperedges (so relations can be placed).
    let component = (0..comps.edges.len())
        .filter(|&c| !comps.hedges[c].is_empty())
        .max_by_key(|&c| comps.edges[c].len())
        .ok_or("2L graph has no hyperedges")?;
    let m = comps.edges[component].len();
    if m < n {
        return Err(format!(
            "biggest component has {m} vertices, need at least {n}"
        ));
    }
    // Pad with 'dummy' universal languages so that n = m (as in the paper).
    let a_syms: Vec<Symbol> = alphabet.symbols().collect();
    let mut padded: Vec<Nfa<Symbol>> = langs.to_vec();
    padded.resize_with(m, || Nfa::universal_lang(&a_syms));

    let md = build_marker_db(&padded, alphabet);
    let num_b = md.alphabet.len();

    // 1-based component index of each path variable in the component.
    let index_of = |edge: usize| -> usize {
        comps.edges[component]
            .iter()
            .position(|&e| e == edge)
            // lint:allow(unwrap): index_of is only called on this component's edges
            .expect("member of component")
            + 1
    };

    let mut q = Ecrpq::new(md.alphabet.clone());
    let path_vars = scaffold_query(&mut q, g);
    for h in 0..g.num_hyperedges() {
        let members = g.hyperedge(h);
        let args: Vec<PathVar> = members.iter().map(|&e| path_vars[e]).collect();
        let rel = if comps.comp_of_hedge[h] == component {
            let constrained: Vec<(usize, usize)> = members
                .iter()
                .enumerate()
                .map(|(track, &e)| (track, index_of(e)))
                .collect();
            marker_relation(args.len(), &constrained, &a_syms, md.hash, md.dollar, num_b)
        } else {
            relations::universal(args.len(), num_b)
        };
        q.rel_atom(&format!("R{h}"), Arc::new(rel), &args);
    }
    Ok((q, md.db))
}

/// Case (2) of Lemma 5.1: some path variable is incident to `n`
/// hyperedges. Each incident hyperedge `hᵢ` gets the relation
/// `Lᵢ × (A*)^{k-1}` (on the pivot's track); the database is a single
/// vertex with one self-loop per alphabet symbol.
pub fn ine_to_ecrpq_high_degree(
    langs: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    let n = langs.len();
    if n == 0 {
        return Err("need at least one language".into());
    }
    // find the edge with the most incident hyperedges
    let mut incidence: Vec<Vec<usize>> = vec![Vec::new(); g.num_edges()];
    for h in 0..g.num_hyperedges() {
        for &e in g.hyperedge(h) {
            incidence[e].push(h);
        }
    }
    let (pivot, hs) = incidence
        .iter()
        .enumerate()
        .max_by_key(|(_, hs)| hs.len())
        .ok_or("2L graph has no edges")?;
    if hs.len() < n {
        return Err(format!(
            "max hyperedge-degree is {}, need at least {n}",
            hs.len()
        ));
    }
    let num_a = alphabet.len();
    let a_syms: Vec<Symbol> = alphabet.symbols().collect();

    // database: one vertex, a self-loop per symbol
    let mut db = GraphDb::with_alphabet(alphabet.clone());
    let v = db.add_node("v");
    for &a in &a_syms {
        db.add_edge_sym(v, a, v);
    }

    let mut q = Ecrpq::new(alphabet.clone());
    let path_vars = scaffold_query(&mut q, g);
    let universal_lang = Nfa::universal_lang(&a_syms);
    for h in 0..g.num_hyperedges() {
        let members = g.hyperedge(h);
        let args: Vec<PathVar> = members.iter().map(|&e| path_vars[e]).collect();
        // is h one of the first n hyperedges incident to the pivot?
        let lang_idx = hs.iter().take(n).position(|&hh| hh == h);
        let rel = match lang_idx {
            Some(i) => {
                // L_i on the pivot's track, A* elsewhere
                let lang_nfas: Vec<&Nfa<Symbol>> = members
                    .iter()
                    .map(|&e| {
                        if e == pivot {
                            &langs[i]
                        } else {
                            &universal_lang
                        }
                    })
                    .collect();
                relations::product_of_languages(&lang_nfas, num_a)
            }
            None => relations::universal(args.len(), num_a),
        };
        q.rel_atom(&format!("R{h}"), Arc::new(rel), &args);
    }
    Ok((q, db))
}

/// Applies whichever case of Lemma 5.1 the 2L graph supports (Lemma A.1:
/// one of the two always applies when `cc_vertex + cc_hedge` is big
/// enough).
pub fn ine_to_ecrpq(
    langs: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    ine_to_ecrpq_big_component(langs, alphabet, g).or_else(|e1| {
        ine_to_ecrpq_high_degree(langs, alphabet, g)
            .map_err(|e2| format!("case 1: {e1}; case 2: {e2}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::intersection_nonempty;
    use ecrpq_automata::Regex;
    use ecrpq_core::{eval_product, PreparedQuery};

    /// A 2L graph with one big component: a “flower” of k path variables
    /// on 2 vertices, joined in a chain of binary hyperedges.
    fn flower(k: usize) -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(2);
        let edges: Vec<usize> = (0..k).map(|_| g.add_edge(0, 1)).collect();
        for w in edges.windows(2) {
            g.add_hyperedge(w);
        }
        if k == 1 {
            g.add_hyperedge(&[edges[0]]);
        }
        g
    }

    /// A 2L graph where one path variable sits in k hyperedges.
    fn star(k: usize) -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(2);
        let pivot = g.add_edge(0, 1);
        for _ in 0..k {
            let other = g.add_edge(0, 1);
            g.add_hyperedge(&[pivot, other]);
        }
        g
    }

    fn langs(res: &[&str], alphabet: &mut Alphabet) -> Vec<Nfa<Symbol>> {
        res.iter()
            .map(|r| Regex::compile_str(r, alphabet).unwrap())
            .collect()
    }

    fn check_equiv(
        reduction: impl Fn(
            &[Nfa<Symbol>],
            &Alphabet,
            &TwoLevelGraph,
        ) -> Result<(Ecrpq, GraphDb), String>,
        res: &[&str],
        g: &TwoLevelGraph,
    ) {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(res, &mut alphabet);
        let expected = intersection_nonempty(&ls);
        let (q, db) = reduction(&ls, &alphabet, g).unwrap();
        q.validate().unwrap();
        let prepared = PreparedQuery::build(&q).unwrap();
        let actual = eval_product(&db, &prepared);
        assert_eq!(
            actual, expected,
            "reduction disagrees with oracle on {res:?}"
        );
    }

    #[test]
    fn case1_nonempty() {
        check_equiv(ine_to_ecrpq_big_component, &["a*b", "(a|b)*b"], &flower(2));
        check_equiv(
            ine_to_ecrpq_big_component,
            &["a*b", "ab*", "(a|b)+"],
            &flower(3),
        );
    }

    #[test]
    fn case1_empty() {
        check_equiv(ine_to_ecrpq_big_component, &["a+", "b+"], &flower(2));
        check_equiv(ine_to_ecrpq_big_component, &["a", "aa"], &flower(3));
    }

    #[test]
    fn case1_with_padding_component_bigger_than_n() {
        // component has 4 vertices, only 2 languages
        check_equiv(ine_to_ecrpq_big_component, &["ab", "ab"], &flower(4));
        check_equiv(ine_to_ecrpq_big_component, &["ab", "ba"], &flower(4));
    }

    #[test]
    fn case1_single_language() {
        check_equiv(ine_to_ecrpq_big_component, &["a*"], &flower(1));
        check_equiv(ine_to_ecrpq_big_component, &["\\0"], &flower(1)); // empty language
    }

    #[test]
    fn case1_epsilon_in_intersection() {
        check_equiv(ine_to_ecrpq_big_component, &["a*", "b*"], &flower(2));
    }

    #[test]
    fn case1_rejects_too_small_graph() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "b", "ab"], &mut alphabet);
        assert!(ine_to_ecrpq_big_component(&ls, &alphabet, &flower(2)).is_err());
    }

    #[test]
    fn case2_nonempty_and_empty() {
        check_equiv(ine_to_ecrpq_high_degree, &["a*b", "(a|b)*b"], &star(2));
        check_equiv(ine_to_ecrpq_high_degree, &["a+", "b+"], &star(2));
        check_equiv(ine_to_ecrpq_high_degree, &["a*", "a|b", "(a|b)*"], &star(3));
    }

    #[test]
    fn case2_rejects_low_degree() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "b", "ab"], &mut alphabet);
        assert!(ine_to_ecrpq_high_degree(&ls, &alphabet, &star(2)).is_err());
    }

    #[test]
    fn automatic_case_selection() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a*b", "ab*"], &mut alphabet);
        assert!(ine_to_ecrpq(&ls, &alphabet, &flower(2)).is_ok());
        assert!(ine_to_ecrpq(&ls, &alphabet, &star(2)).is_ok());
    }

    #[test]
    fn abstraction_matches_input_graph() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "b"], &mut alphabet);
        let g = flower(3);
        let (q, _) = ine_to_ecrpq_big_component(&ls, &alphabet, &g).unwrap();
        let a = q.abstraction();
        assert_eq!(a.num_vertices(), g.num_vertices());
        assert_eq!(a.num_edges(), g.num_edges());
        assert_eq!(a.num_hyperedges(), g.num_hyperedges());
        assert_eq!(a.cc_vertex(), g.cc_vertex());
        assert_eq!(a.cc_hedge(), g.cc_hedge());
    }

    #[test]
    fn case2_abstraction_matches() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "(a|b)*"], &mut alphabet);
        let g = star(2);
        let (q, _) = ine_to_ecrpq_high_degree(&ls, &alphabet, &g).unwrap();
        let a = q.abstraction();
        assert_eq!(a.num_hyperedges(), g.num_hyperedges());
        assert_eq!(a.cc_vertex(), g.cc_vertex());
    }
}
