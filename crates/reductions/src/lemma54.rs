//! Lemma 5.4: parameterized intersection non-emptiness (p-IE) →
//! p-eval-ECRPQ(C), the XNL-hardness engine of Theorem 3.1(1).
//!
//! Given `k` automata (the parameter) and a 2L graph from a class with
//! unbounded `cc_vertex`, the reduction produces a query + database pair
//! whose satisfiability equals `⋂ᵢ L(Aᵢ) ≠ ∅`. Two cases, as in the paper:
//!
//! * **(a) bounded hyperedge size** ([`pie_to_ecrpq_chain`]): find a chain
//!   of `k` hyperedges `h₁,…,h_k` (each of size ≥ 2) linked by private
//!   path variables `uᵢ ∈ ν(hᵢ) ∩ ν(hᵢ₊₁)`; relation `Rᵢ` forces `uᵢ₋₁`
//!   and `uᵢ` to read marker words `$w#^{i−1}$` / `$w#^i$` with a shared
//!   `w`, threading the marker database of [`crate::markers`].
//! * **(b) unbounded hyperedge size** ([`pie_to_ecrpq_wide`]): a single
//!   hyperedge with ≥ `k` members, its `j`-th member forced to `$w#^j$`.
//!
//! Implementation note: where the paper routes the `k`-th language through
//! the endpoint tracks of the chain, we equivalently constrain one extra
//! (non-link) member of `h₁` to `$w#^k$` — same index encoding, same FPT
//! bounds, and the equivalence is differential-tested against the oracle.

use crate::markers::{build_marker_db, marker_relation};
use ecrpq_automata::{relations, Alphabet, Nfa, Symbol};
use ecrpq_graph::GraphDb;
use ecrpq_query::{Ecrpq, PathVar};
use ecrpq_structure::TwoLevelGraph;
use std::sync::Arc;

/// Searches `g` for a chain of `k` hyperedges of size ≥ 2 with private
/// linking edges (backtracking DFS; query graphs are small). Returns
/// `(hyperedges, links)` with `links.len() == k - 1`.
pub fn find_chain(g: &TwoLevelGraph, k: usize) -> Option<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 1);
    let candidates: Vec<usize> = (0..g.num_hyperedges())
        .filter(|&h| g.hyperedge(h).len() >= 2)
        .collect();
    for &start in &candidates {
        let mut chain = vec![start];
        let mut links = Vec::new();
        if dfs(g, k, &candidates, &mut chain, &mut links) {
            return Some((chain, links));
        }
    }
    None
}

fn dfs(
    g: &TwoLevelGraph,
    k: usize,
    candidates: &[usize],
    chain: &mut Vec<usize>,
    links: &mut Vec<usize>,
) -> bool {
    if chain.len() == k {
        return true;
    }
    // lint:allow(unwrap): chain is non-empty: len() == k == 0 returns above
    let last = *chain.last().unwrap();
    for &h in candidates {
        if chain.contains(&h) {
            continue;
        }
        // no earlier link may touch h (links must be private to their pair)
        if links.iter().any(|&u| g.hyperedge(h).contains(&u)) {
            continue;
        }
        for &e in g.hyperedge(last) {
            if !g.hyperedge(h).contains(&e) {
                continue;
            }
            // e must not occur in any other chain hyperedge
            if chain[..chain.len() - 1]
                .iter()
                .any(|&hh| g.hyperedge(hh).contains(&e))
            {
                continue;
            }
            if links.contains(&e) {
                continue;
            }
            chain.push(h);
            links.push(e);
            if dfs(g, k, candidates, chain, links) {
                return true;
            }
            chain.pop();
            links.pop();
        }
    }
    false
}

/// Shared scaffolding: node/path variables mirroring `g`'s first level.
fn scaffold_query(q: &mut Ecrpq, g: &TwoLevelGraph) -> Vec<PathVar> {
    let node_vars: Vec<_> = (0..g.num_vertices())
        .map(|v| q.node_var(&format!("x{v}")))
        .collect();
    (0..g.num_edges())
        .map(|e| {
            let (src, dst) = g.edge(e);
            q.path_atom(node_vars[src], &format!("p{e}"), node_vars[dst])
        })
        .collect()
}

/// Case (a) of Lemma 5.4: chain of hyperedges with private links.
pub fn pie_to_ecrpq_chain(
    automata: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    let k = automata.len();
    if k == 0 {
        return Err("need at least one automaton".into());
    }
    let (chain, links) =
        find_chain(g, k).ok_or_else(|| format!("no hyperedge chain of length {k}"))?;
    let a_syms: Vec<Symbol> = alphabet.symbols().collect();
    let md = build_marker_db(automata, alphabet);
    let num_b = md.alphabet.len();

    // the extra member of h₁ that carries L_k's index
    let extra = if k >= 2 {
        *g.hyperedge(chain[0])
            .iter()
            .find(|&&e| e != links[0])
            // lint:allow(unwrap): chain hyperedges have ≥ 2 endpoints when k ≥ 2
            .expect("chain hyperedges have size ≥ 2")
    } else {
        g.hyperedge(chain[0])[0]
    };

    let mut q = Ecrpq::new(md.alphabet.clone());
    let path_vars = scaffold_query(&mut q, g);
    for h in 0..g.num_hyperedges() {
        let members = g.hyperedge(h);
        let args: Vec<PathVar> = members.iter().map(|&e| path_vars[e]).collect();
        let pos = chain.iter().position(|&hh| hh == h);
        let rel = match pos {
            Some(i0) => {
                let i = i0 + 1; // 1-based chain position
                let mut constrained: Vec<(usize, usize)> = Vec::new();
                // lint:allow(unwrap): links are members of the same component
                let track_of = |e: usize| members.iter().position(|&m| m == e).unwrap();
                if i >= 2 {
                    constrained.push((track_of(links[i - 2]), i - 1));
                }
                if i < k {
                    constrained.push((track_of(links[i - 1]), i));
                }
                if i == 1 {
                    constrained.push((track_of(extra), k));
                }
                marker_relation(args.len(), &constrained, &a_syms, md.hash, md.dollar, num_b)
            }
            None => relations::universal(args.len(), num_b),
        };
        q.rel_atom(&format!("R{h}"), Arc::new(rel), &args);
    }
    Ok((q, md.db))
}

/// Case (b) of Lemma 5.4: one hyperedge with at least `k` members; its
/// `j`-th member is forced to read `$w#^j$` for `j ≤ k`.
pub fn pie_to_ecrpq_wide(
    automata: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    let k = automata.len();
    if k == 0 {
        return Err("need at least one automaton".into());
    }
    let wide = (0..g.num_hyperedges())
        .max_by_key(|&h| g.hyperedge(h).len())
        .ok_or("2L graph has no hyperedges")?;
    if g.hyperedge(wide).len() < k {
        return Err(format!(
            "widest hyperedge has {} members, need {k}",
            g.hyperedge(wide).len()
        ));
    }
    let a_syms: Vec<Symbol> = alphabet.symbols().collect();
    let md = build_marker_db(automata, alphabet);
    let num_b = md.alphabet.len();

    let mut q = Ecrpq::new(md.alphabet.clone());
    let path_vars = scaffold_query(&mut q, g);
    for h in 0..g.num_hyperedges() {
        let members = g.hyperedge(h);
        let args: Vec<PathVar> = members.iter().map(|&e| path_vars[e]).collect();
        let rel = if h == wide {
            let constrained: Vec<(usize, usize)> = (0..k).map(|j| (j, j + 1)).collect();
            marker_relation(args.len(), &constrained, &a_syms, md.hash, md.dollar, num_b)
        } else {
            relations::universal(args.len(), num_b)
        };
        q.rel_atom(&format!("R{h}"), Arc::new(rel), &args);
    }
    Ok((q, md.db))
}

/// Applies whichever case of Lemma 5.4 the graph supports.
pub fn pie_to_ecrpq(
    automata: &[Nfa<Symbol>],
    alphabet: &Alphabet,
    g: &TwoLevelGraph,
) -> Result<(Ecrpq, GraphDb), String> {
    pie_to_ecrpq_chain(automata, alphabet, g).or_else(|e1| {
        pie_to_ecrpq_wide(automata, alphabet, g).map_err(|e2| format!("case a: {e1}; case b: {e2}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::intersection_nonempty;
    use ecrpq_automata::Regex;
    use ecrpq_core::{eval_product, PreparedQuery};

    /// The canonical chain graph: k binary hyperedges `{eᵢ, eᵢ₊₁}` over
    /// k+1 parallel edges; links are e₂ … e_k, all private.
    fn chain_graph(k: usize) -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(2);
        let edges: Vec<usize> = (0..=k).map(|_| g.add_edge(0, 1)).collect();
        for i in 0..k {
            g.add_hyperedge(&[edges[i], edges[i + 1]]);
        }
        g
    }

    /// One wide hyperedge over r parallel edges.
    fn wide_graph(r: usize) -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(2);
        let edges: Vec<usize> = (0..r).map(|_| g.add_edge(0, 1)).collect();
        g.add_hyperedge(&edges);
        g
    }

    fn langs(res: &[&str], alphabet: &mut Alphabet) -> Vec<Nfa<Symbol>> {
        res.iter()
            .map(|r| Regex::compile_str(r, alphabet).unwrap())
            .collect()
    }

    fn check_equiv(
        reduction: impl Fn(
            &[Nfa<Symbol>],
            &Alphabet,
            &TwoLevelGraph,
        ) -> Result<(Ecrpq, GraphDb), String>,
        res: &[&str],
        g: &TwoLevelGraph,
    ) {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(res, &mut alphabet);
        let expected = intersection_nonempty(&ls);
        let (q, db) = reduction(&ls, &alphabet, g).unwrap();
        q.validate().unwrap();
        let prepared = PreparedQuery::build(&q).unwrap();
        assert_eq!(
            eval_product(&db, &prepared),
            expected,
            "reduction disagrees with oracle on {res:?}"
        );
    }

    #[test]
    fn find_chain_on_chain_graph() {
        let g = chain_graph(4);
        let (chain, links) = find_chain(&g, 4).unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(links.len(), 3);
        // links are private
        for (i, &u) in links.iter().enumerate() {
            for (j, &h) in chain.iter().enumerate() {
                let member = g.hyperedge(h).contains(&u);
                assert_eq!(member, j == i || j == i + 1, "link {i} vs hyperedge {j}");
            }
        }
        assert!(find_chain(&g, 5).is_none());
    }

    #[test]
    fn chain_case_equivalence() {
        check_equiv(pie_to_ecrpq_chain, &["a*b", "(a|b)*b"], &chain_graph(2));
        check_equiv(pie_to_ecrpq_chain, &["a+", "b+"], &chain_graph(2));
        check_equiv(
            pie_to_ecrpq_chain,
            &["a*b", "ab*", "(a|b)+"],
            &chain_graph(3),
        );
        check_equiv(pie_to_ecrpq_chain, &["a", "aa", "a*"], &chain_graph(3));
    }

    #[test]
    fn chain_case_k1() {
        check_equiv(pie_to_ecrpq_chain, &["ab"], &chain_graph(1));
        check_equiv(pie_to_ecrpq_chain, &["\\0"], &chain_graph(1));
    }

    #[test]
    fn wide_case_equivalence() {
        check_equiv(pie_to_ecrpq_wide, &["a*b", "(a|b)*b"], &wide_graph(2));
        check_equiv(pie_to_ecrpq_wide, &["a+", "b+"], &wide_graph(3));
        check_equiv(pie_to_ecrpq_wide, &["a*", "a+", "aa*"], &wide_graph(3));
    }

    #[test]
    fn wide_case_rejects_narrow() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "b", "ab"], &mut alphabet);
        assert!(pie_to_ecrpq_wide(&ls, &alphabet, &wide_graph(2)).is_err());
    }

    #[test]
    fn auto_selection() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a*", "a+"], &mut alphabet);
        assert!(pie_to_ecrpq(&ls, &alphabet, &chain_graph(2)).is_ok());
        assert!(pie_to_ecrpq(&ls, &alphabet, &wide_graph(2)).is_ok());
        assert!(pie_to_ecrpq(&ls, &alphabet, &wide_graph(1)).is_err());
    }

    #[test]
    fn abstraction_matches() {
        let mut alphabet = Alphabet::ascii_lower(2);
        let ls = langs(&["a", "b"], &mut alphabet);
        let g = chain_graph(2);
        let (q, _) = pie_to_ecrpq_chain(&ls, &alphabet, &g).unwrap();
        let a = q.abstraction();
        assert_eq!(a.num_edges(), g.num_edges());
        assert_eq!(a.num_hyperedges(), g.num_hyperedges());
        assert_eq!(a.cc_vertex(), g.cc_vertex());
    }

    #[test]
    fn chain_in_graph_with_decoys() {
        // chain graph plus an unrelated hyperedge-free edge and a singleton
        let mut g = chain_graph(2);
        g.add_edge(0, 1);
        let lone = g.add_edge(1, 0);
        g.add_hyperedge(&[lone]);
        check_equiv(pie_to_ecrpq_chain, &["a*b", "ba*"], &g);
    }
}
