//! Simple graphs and multigraphs.
//!
//! [`Graph`] is an undirected simple graph (adjacency-set representation)
//! used for Gaifman graphs, `G^node`, and treewidth computation.
//! [`MultiGraph`] keeps edge multiplicities, matching the paper's use of
//! multigraphs as abstractions of `CQ_bin` queries (§2) and as the
//! `G^collapse` representation (§5.2).

use std::collections::HashSet;

/// An undirected simple graph on vertices `0..n` (no self-loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<HashSet<usize>>,
}

impl Graph {
    /// The empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![HashSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(HashSet::len).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{u, v}`; self-loops are ignored (they are
    /// irrelevant to treewidth and to the Gaifman abstraction).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v {
            return;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// The neighbourhood of `u`.
    pub fn neighbors(&self, u: usize) -> &HashSet<usize> {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// All edges as ordered pairs `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Adds a clique on the given vertices (the `G^node` construction
    /// “replaces connected components of `G^rel` with cliques on their
    /// incident vertices”).
    pub fn add_clique(&mut self, vertices: &[usize]) {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                self.add_edge(u, v);
            }
        }
    }

    /// Connected components, each as a sorted vertex list.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for &v in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        g.add_clique(&(0..n).collect::<Vec<_>>());
        g
    }

    /// The cycle `C_n`.
    pub fn cycle(n: usize) -> Self {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The path `P_n` (`n` vertices, `n−1` edges).
    pub fn path(n: usize) -> Self {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// The `w × h` grid graph.
    pub fn grid(w: usize, h: usize) -> Self {
        let mut g = Graph::new(w * h);
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    g.add_edge(v, v + 1);
                }
                if y + 1 < h {
                    g.add_edge(v, v + w);
                }
            }
        }
        g
    }
}

/// An undirected multigraph: a simple-graph skeleton plus edge
/// multiplicities (self-loops allowed and counted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiGraph {
    n: usize,
    /// Edge list with multiplicity (each occurrence listed), normalized to
    /// `u ≤ v`.
    edges: Vec<(usize, usize)>,
}

impl MultiGraph {
    /// The empty multigraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges, counted with multiplicity.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds one occurrence of the edge `{u, v}` (possibly `u == v`).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Multiplicity of the edge `{u, v}`.
    pub fn multiplicity(&self, u: usize, v: usize) -> usize {
        let key = (u.min(v), u.max(v));
        self.edges.iter().filter(|&&e| e == key).count()
    }

    /// Edge list (with multiplicity), sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut e = self.edges.clone();
        e.sort_unstable();
        e
    }

    /// The underlying simple graph (multiplicities and self-loops dropped);
    /// “the treewidth of a multigraph is simply the treewidth of its
    /// underlying simple graph” (§2).
    pub fn simple(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for &(u, v) in &self.edges {
            g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_graph_ops() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 2); // ignored self-loop
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn clique_insertion() {
        let mut g = Graph::new(5);
        g.add_clique(&[0, 2, 4]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn components() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn families() {
        assert_eq!(Graph::complete(4).num_edges(), 6);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::path(5).num_edges(), 4);
        let grid = Graph::grid(3, 2);
        assert_eq!(grid.num_vertices(), 6);
        assert_eq!(grid.num_edges(), 7);
    }

    #[test]
    fn multigraph_multiplicity() {
        let mut m = MultiGraph::new(3);
        m.add_edge(0, 1);
        m.add_edge(1, 0);
        m.add_edge(1, 1);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.multiplicity(0, 1), 2);
        assert_eq!(m.multiplicity(1, 1), 1);
        let s = m.simple();
        assert_eq!(s.num_edges(), 1);
    }
}
