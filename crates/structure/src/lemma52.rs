//! Lemma 5.2, constructively.
//!
//! The paper proves: if `cc_vertex(C) < ∞` and `tw(C^node) = ∞` then
//! `tw(C^collapse) = ∞`, by the counterpositive — *“given a tree
//! decomposition of `G^collapse` of width `k`, replacing in every bag each
//! component vertex by the (at most `2n`) vertices incident to it yields a
//! tree decomposition [of `G^node`] of width `≤ (k+1)·2n − 1`”*. This
//! module implements that bag-replacement transformation and exposes the
//! bound, so the lemma is exercised as executable code rather than only as
//! a numeric property test.

use crate::treewidth::TreeDecomposition;
use crate::twolevel::TwoLevelGraph;

/// Transforms a tree decomposition of `G^collapse` into one of `G^node`
/// by the Lemma 5.2 bag replacement. Returns the new decomposition, whose
/// width is at most `(k+1)·2n − 1` for `k` the input width and
/// `n = cc_vertex(G)`.
///
/// # Panics
/// Panics if the decomposition's vertices do not match `g.collapse()`
/// (it must cover `num_vertices + #components` vertices).
pub fn node_decomposition_from_collapse(
    g: &TwoLevelGraph,
    collapse_dec: &TreeDecomposition,
) -> TreeDecomposition {
    let comps = g.rel_components();
    let num_v = g.num_vertices();
    // incident node variables of each component
    let incident: Vec<Vec<usize>> = comps
        .edges
        .iter()
        .map(|edge_list| {
            let mut verts: Vec<usize> = edge_list
                .iter()
                .flat_map(|&e| {
                    let (u, v) = g.edge(e);
                    [u, v]
                })
                .collect();
            verts.sort_unstable();
            verts.dedup();
            verts
        })
        .collect();
    let bags: Vec<Vec<usize>> = collapse_dec
        .bags
        .iter()
        .map(|bag| {
            let mut out: Vec<usize> = Vec::new();
            for &v in bag {
                if v < num_v {
                    out.push(v);
                } else {
                    let c = v - num_v;
                    assert!(c < incident.len(), "bag vertex out of collapse range");
                    out.extend_from_slice(&incident[c]);
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    TreeDecomposition {
        bags,
        edges: collapse_dec.edges.clone(),
    }
}

/// The Lemma 5.2 width bound: `(k+1) · 2n − 1`.
pub fn lemma52_bound(collapse_width: usize, cc_vertex: usize) -> usize {
    ((collapse_width + 1) * 2 * cc_vertex.max(1)).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewidth::treewidth_exact;

    fn chain_2l(k: usize) -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(k + 1);
        let edges: Vec<usize> = (0..k).map(|i| g.add_edge(i, i + 1)).collect();
        for w in edges.windows(2) {
            g.add_hyperedge(w);
        }
        if k == 1 {
            g.add_hyperedge(&[edges[0]]);
        }
        g
    }

    #[test]
    fn transformed_decomposition_is_valid_and_bounded() {
        for g in [chain_2l(2), chain_2l(4), paper_example()] {
            let collapse = g.collapse().simple();
            let (k, cdec) = treewidth_exact(&collapse);
            cdec.validate(&collapse).unwrap();
            let ndec = node_decomposition_from_collapse(&g, &cdec);
            let node = g.node_graph();
            ndec.validate(&node)
                .expect("transformed decomposition invalid");
            let bound = lemma52_bound(k, g.cc_vertex());
            assert!(
                ndec.width() <= bound,
                "width {} exceeds Lemma 5.2 bound {bound}",
                ndec.width()
            );
            // and it is an upper bound on the true treewidth, of course
            let (tw_node, _) = treewidth_exact(&node);
            assert!(tw_node <= ndec.width());
        }
    }

    /// The running example of §3.
    fn paper_example() -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(6);
        let p1 = g.add_edge(0, 1);
        let p2 = g.add_edge(1, 2);
        let p3 = g.add_edge(2, 3);
        let p4 = g.add_edge(3, 4);
        let p5 = g.add_edge(4, 5);
        g.add_hyperedge(&[p1]);
        g.add_hyperedge(&[p2, p3]);
        g.add_hyperedge(&[p3, p4]);
        g.add_hyperedge(&[p5]);
        g
    }

    #[test]
    fn self_loops_and_singletons_handled() {
        let mut g = TwoLevelGraph::new(2);
        let e0 = g.add_edge(0, 0); // self loop
        let e1 = g.add_edge(0, 1);
        g.add_hyperedge(&[e0]);
        g.add_hyperedge(&[e1]);
        let collapse = g.collapse().simple();
        let (_, cdec) = treewidth_exact(&collapse);
        let ndec = node_decomposition_from_collapse(&g, &cdec);
        ndec.validate(&g.node_graph()).unwrap();
    }
}
