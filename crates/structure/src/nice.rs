//! Nice tree decompositions.
//!
//! A *nice* decomposition normalizes an arbitrary tree decomposition into
//! nodes of four shapes — the form dynamic programs are cleanest on (used
//! by the counting evaluator in `ecrpq-core`):
//!
//! * **Leaf** — empty bag;
//! * **Introduce(v)** — bag = child's bag ∪ {v};
//! * **Forget(v)** — bag = child's bag ∖ {v};
//! * **Join** — two children with identical bags.
//!
//! The transformation preserves width and produces `O(tw · n)` nodes.

use crate::treewidth::TreeDecomposition;

/// The shape of a nice-decomposition node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NiceKind {
    /// Empty-bag leaf.
    Leaf,
    /// Adds the variable to the child's bag.
    Introduce(usize),
    /// Removes the variable from the child's bag.
    Forget(usize),
    /// Two children with the same bag.
    Join,
}

/// A rooted nice tree decomposition.
#[derive(Debug, Clone)]
pub struct NiceDecomposition {
    /// Bag of each node (sorted).
    pub bags: Vec<Vec<usize>>,
    /// Shape of each node.
    pub kinds: Vec<NiceKind>,
    /// Children of each node (0, 1 or 2).
    pub children: Vec<Vec<usize>>,
    /// The root node (its bag is empty).
    pub root: usize,
}

impl NiceDecomposition {
    /// Width (max bag − 1; 0 for trivial decompositions).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether the decomposition has no nodes (never produced by
    /// [`to_nice`], which emits at least a leaf).
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Structural validation of the four node shapes plus the root's
    /// empty bag.
    pub fn validate(&self) -> Result<(), String> {
        if !self.bags[self.root].is_empty() {
            return Err("root bag must be empty".into());
        }
        for i in 0..self.len() {
            let kids = &self.children[i];
            match self.kinds[i] {
                NiceKind::Leaf => {
                    if !kids.is_empty() || !self.bags[i].is_empty() {
                        return Err(format!("node {i}: malformed leaf"));
                    }
                }
                NiceKind::Introduce(v) => {
                    if kids.len() != 1 {
                        return Err(format!("node {i}: introduce needs one child"));
                    }
                    let mut expect = self.bags[kids[0]].clone();
                    expect.push(v);
                    expect.sort_unstable();
                    if self.bags[i] != expect || self.bags[kids[0]].contains(&v) {
                        return Err(format!("node {i}: bad introduce({v})"));
                    }
                }
                NiceKind::Forget(v) => {
                    if kids.len() != 1 {
                        return Err(format!("node {i}: forget needs one child"));
                    }
                    let expect: Vec<usize> = self.bags[kids[0]]
                        .iter()
                        .copied()
                        .filter(|&w| w != v)
                        .collect();
                    if self.bags[i] != expect || !self.bags[kids[0]].contains(&v) {
                        return Err(format!("node {i}: bad forget({v})"));
                    }
                }
                NiceKind::Join => {
                    if kids.len() != 2 {
                        return Err(format!("node {i}: join needs two children"));
                    }
                    if self.bags[kids[0]] != self.bags[i] || self.bags[kids[1]] != self.bags[i] {
                        return Err(format!("node {i}: join children bags differ"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Converts any tree decomposition into a nice one of the same width.
pub fn to_nice(dec: &TreeDecomposition) -> NiceDecomposition {
    let mut out = Builder::default();
    if dec.bags.is_empty() {
        let leaf = out.push(Vec::new(), NiceKind::Leaf, vec![]);
        return out.finish(leaf);
    }
    // root the original tree at 0
    let nb = dec.bags.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for &(a, b) in &dec.edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let top = out.build_subtree(dec, &adj, 0, usize::MAX);
    // forget everything in the top bag down to the empty root
    let mut bag = dec.bags[0].clone();
    bag.sort_unstable();
    let mut cur = top;
    let mut cur_bag = bag.clone();
    for v in bag.into_iter().rev() {
        cur_bag.retain(|&w| w != v);
        cur = out.push(cur_bag.clone(), NiceKind::Forget(v), vec![cur]);
    }
    out.finish(cur)
}

#[derive(Default)]
struct Builder {
    bags: Vec<Vec<usize>>,
    kinds: Vec<NiceKind>,
    children: Vec<Vec<usize>>,
}

impl Builder {
    fn push(&mut self, bag: Vec<usize>, kind: NiceKind, children: Vec<usize>) -> usize {
        self.bags.push(bag);
        self.kinds.push(kind);
        self.children.push(children);
        self.bags.len() - 1
    }

    fn finish(self, root: usize) -> NiceDecomposition {
        NiceDecomposition {
            bags: self.bags,
            kinds: self.kinds,
            children: self.children,
            root,
        }
    }

    /// Builds a nice subtree whose top node has exactly `dec.bags[node]`
    /// (sorted) as bag; returns its index.
    fn build_subtree(
        &mut self,
        dec: &TreeDecomposition,
        adj: &[Vec<usize>],
        node: usize,
        parent: usize,
    ) -> usize {
        let mut bag = dec.bags[node].clone();
        bag.sort_unstable();
        let kids: Vec<usize> = adj[node].iter().copied().filter(|&c| c != parent).collect();
        if kids.is_empty() {
            // introduce chain from the empty leaf
            let mut cur = self.push(Vec::new(), NiceKind::Leaf, vec![]);
            let mut cur_bag: Vec<usize> = Vec::new();
            for &v in &bag {
                cur_bag.push(v);
                cur_bag.sort_unstable();
                cur = self.push(cur_bag.clone(), NiceKind::Introduce(v), vec![cur]);
            }
            return cur;
        }
        // one branch per child: child subtree, then morph its bag into ours
        let mut branches: Vec<usize> = Vec::with_capacity(kids.len());
        for &c in &kids {
            let mut cur = self.build_subtree(dec, adj, c, node);
            let mut cur_bag = dec.bags[c].clone();
            cur_bag.sort_unstable();
            // forget vars not in our bag
            let to_forget: Vec<usize> = cur_bag
                .iter()
                .copied()
                .filter(|v| !bag.contains(v))
                .collect();
            for v in to_forget {
                cur_bag.retain(|&w| w != v);
                cur = self.push(cur_bag.clone(), NiceKind::Forget(v), vec![cur]);
            }
            // introduce vars missing from the child's bag
            let to_introduce: Vec<usize> = bag
                .iter()
                .copied()
                .filter(|v| !cur_bag.contains(v))
                .collect();
            for v in to_introduce {
                cur_bag.push(v);
                cur_bag.sort_unstable();
                cur = self.push(cur_bag.clone(), NiceKind::Introduce(v), vec![cur]);
            }
            branches.push(cur);
        }
        // a spine branch introducing the bag from scratch guarantees every
        // bag variable is introduced somewhere below the joins
        let mut spine = self.push(Vec::new(), NiceKind::Leaf, vec![]);
        let mut spine_bag: Vec<usize> = Vec::new();
        for &v in &bag {
            spine_bag.push(v);
            spine_bag.sort_unstable();
            spine = self.push(spine_bag.clone(), NiceKind::Introduce(v), vec![spine]);
        }
        branches.push(spine);
        // fold branches with joins
        let mut cur = branches[0];
        for &b in &branches[1..] {
            cur = self.push(bag.clone(), NiceKind::Join, vec![cur, b]);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::Graph;
    use crate::treewidth::treewidth_exact;

    fn nice_of(g: &Graph) -> NiceDecomposition {
        let (_, dec) = treewidth_exact(g);
        dec.validate(g).unwrap();
        let nice = to_nice(&dec);
        nice.validate().unwrap();
        nice
    }

    #[test]
    fn nice_on_standard_graphs() {
        for g in [
            Graph::path(6),
            Graph::cycle(5),
            Graph::complete(4),
            Graph::grid(3, 3),
            Graph::new(3),
        ] {
            let (w, _) = treewidth_exact(&g);
            let nice = nice_of(&g);
            assert_eq!(nice.width(), w, "width preserved");
            // every vertex introduced and forgotten somewhere
            for v in 0..g.num_vertices() {
                assert!(nice
                    .kinds
                    .iter()
                    .any(|k| matches!(k, NiceKind::Forget(w) if *w == v)));
            }
        }
    }

    #[test]
    fn single_vertex_graph() {
        let nice = nice_of(&Graph::new(1));
        assert!(nice.validate().is_ok());
        assert_eq!(nice.bags[nice.root], Vec::<usize>::new());
    }

    #[test]
    fn every_edge_covered_by_some_nice_bag() {
        let g = Graph::grid(3, 2);
        let nice = nice_of(&g);
        for (u, v) in g.edges() {
            assert!(
                nice.bags.iter().any(|b| b.contains(&u) && b.contains(&v)),
                "edge ({u},{v}) uncovered"
            );
        }
    }

    #[test]
    fn node_count_is_linear() {
        let g = Graph::path(20);
        let nice = nice_of(&g);
        assert!(nice.len() <= 40 * 20, "blow-up too large: {}", nice.len());
    }
}
