#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Two-level graphs, structural measures, and treewidth.
//!
//! §2–3 of the paper abstract an ECRPQ into a *two-level multi-hypergraph*
//! (“2L graph”) `G = (V, E, H, η, ν)`: `(V, E, η)` is a multigraph on the
//! node variables whose edges are the path variables, and `(E, H, ν)` is a
//! multi-hypergraph on the path variables whose hyperedges are the relation
//! atoms. The complexity of evaluation is characterized by three measures:
//!
//! * [`TwoLevelGraph::cc_vertex`] — the maximum number of path variables in
//!   a connected component of `G^rel`;
//! * [`TwoLevelGraph::cc_hedge`] — the maximum number of hyperedges in such
//!   a component;
//! * the treewidth of [`TwoLevelGraph::node_graph`] (`G^node`), where
//!   connected components of `G^rel` are replaced by cliques on their
//!   incident node variables.
//!
//! [`TwoLevelGraph::collapse`] is the `G^collapse` multigraph of §5.2, used
//! by the W\[1\]-hardness reduction (Lemma 5.3); [`treewidth`] provides tree
//! decompositions with exact and heuristic width computation.

pub mod graphs;
pub mod lemma52;
pub mod nice;
pub mod treewidth;
pub mod twolevel;

pub use graphs::{Graph, MultiGraph};
pub use lemma52::{lemma52_bound, node_decomposition_from_collapse};
pub use nice::{to_nice, NiceDecomposition, NiceKind};
pub use treewidth::{treewidth_exact, treewidth_upper_bound, TreeDecomposition};
pub use twolevel::{RelComponents, TwoLevelGraph};
