//! Tree decompositions and treewidth.
//!
//! §2 of the paper recalls tree decompositions; note the paper's “width” is
//! the maximum bag *size*, while this module uses the standard convention
//! **width = max bag size − 1** (trees then have treewidth 1, cliques `K_n`
//! treewidth `n − 1`). Boundedness statements — all that Theorems 3.1/3.2
//! depend on — are identical under either convention.
//!
//! Provided algorithms:
//!
//! * [`decomposition_from_order`] — the classical elimination-order
//!   construction (triangulate, bag = vertex + its elimination
//!   neighbourhood);
//! * [`min_degree_order`] / [`min_fill_order`] — greedy heuristic orders;
//! * [`treewidth_upper_bound`] — best heuristic decomposition;
//! * [`treewidth_lower_bound`] — the degeneracy (MMD) lower bound;
//! * [`treewidth_exact`] — exact width by memoized search over elimination
//!   orders (for graphs with ≤ 64 vertices; queries are small).
//!
//! Every decomposition can be checked with
//! [`TreeDecomposition::validate`], and the property tests assert
//! `lower ≤ exact ≤ heuristic` throughout.

use crate::graphs::Graph;
use std::collections::HashSet;

/// A tree decomposition: bags plus tree edges between bag indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The bags (each a sorted vertex list).
    pub bags: Vec<Vec<usize>>,
    /// Tree edges between bag indices.
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Width = max bag size − 1 (0 for decompositions of edgeless or empty
    /// graphs).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Validates the three tree-decomposition conditions against `g`:
    /// every vertex occurs in a bag, every edge is covered by a bag, and
    /// each vertex's bags induce a connected subtree — plus that the bag
    /// graph is actually a tree.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let nb = self.bags.len();
        if nb == 0 {
            return if g.num_vertices() == 0 {
                Ok(())
            } else {
                Err("no bags for a non-empty graph".into())
            };
        }
        // Tree check: connected with nb-1 edges.
        if self.edges.len() != nb - 1 {
            return Err(format!(
                "bag graph has {} edges, expected {}",
                self.edges.len(),
                nb - 1
            ));
        }
        let mut adj = vec![Vec::new(); nb];
        for &(a, b) in &self.edges {
            if a >= nb || b >= nb {
                return Err("tree edge out of range".into());
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; nb];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(b) = stack.pop() {
            for &n in &adj[b] {
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        if count != nb {
            return Err("bag graph is not connected".into());
        }
        // Vertex coverage + connectivity of occurrence sets.
        for v in 0..g.num_vertices() {
            let occ: Vec<usize> = (0..nb).filter(|&b| self.bags[b].contains(&v)).collect();
            if occ.is_empty() {
                return Err(format!("vertex {v} in no bag"));
            }
            let occ_set: HashSet<usize> = occ.iter().copied().collect();
            let mut seen = HashSet::new();
            let mut stack = vec![occ[0]];
            seen.insert(occ[0]);
            while let Some(b) = stack.pop() {
                for &n in &adj[b] {
                    if occ_set.contains(&n) && seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
            if seen.len() != occ.len() {
                return Err(format!("occurrences of vertex {v} are disconnected"));
            }
        }
        // Edge coverage.
        for (u, v) in g.edges() {
            if !self.bags.iter().any(|b| b.contains(&u) && b.contains(&v)) {
                return Err(format!("edge ({u},{v}) not covered by any bag"));
            }
        }
        Ok(())
    }
}

/// Dynamic elimination graph used by order construction.
struct ElimGraph {
    adj: Vec<HashSet<usize>>,
    alive: Vec<bool>,
}

impl ElimGraph {
    fn new(g: &Graph) -> Self {
        ElimGraph {
            adj: (0..g.num_vertices())
                .map(|v| g.neighbors(v).clone())
                .collect(),
            alive: vec![true; g.num_vertices()],
        }
    }

    /// Eliminates `v`: connects its (alive) neighbours into a clique,
    /// returning them.
    fn eliminate(&mut self, v: usize) -> Vec<usize> {
        let neigh: Vec<usize> = self.adj[v]
            .iter()
            .copied()
            .filter(|&u| self.alive[u])
            .collect();
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                self.adj[a].insert(b);
                self.adj[b].insert(a);
            }
        }
        for &u in &neigh {
            self.adj[u].remove(&v);
        }
        self.alive[v] = false;
        neigh
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v].iter().filter(|&&u| self.alive[u]).count()
    }

    fn fill_in(&self, v: usize) -> usize {
        let neigh: Vec<usize> = self.adj[v]
            .iter()
            .copied()
            .filter(|&u| self.alive[u])
            .collect();
        let mut fill = 0;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if !self.adj[a].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    }
}

/// The min-degree greedy elimination order.
pub fn min_degree_order(g: &Graph) -> Vec<usize> {
    greedy_order(g, |eg, v| eg.degree(v))
}

/// The min-fill greedy elimination order.
pub fn min_fill_order(g: &Graph) -> Vec<usize> {
    greedy_order(g, |eg, v| eg.fill_in(v))
}

fn greedy_order(g: &Graph, score: impl Fn(&ElimGraph, usize) -> usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut eg = ElimGraph::new(g);
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| eg.alive[v])
            .min_by_key(|&v| (score(&eg, v), v))
            // lint:allow(unwrap): the loop runs only while some vertex is alive
            .unwrap();
        eg.eliminate(v);
        order.push(v);
    }
    order
}

/// Builds a tree decomposition from an elimination order: bag(v) = {v} ∪
/// (neighbours of v alive at elimination time, after triangulation); the
/// parent of bag(v) is the bag of the earliest-eliminated member of its
/// neighbourhood. Disconnected pieces are chained to form a single tree.
pub fn decomposition_from_order(g: &Graph, order: &[usize]) -> TreeDecomposition {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover all vertices");
    if n == 0 {
        return TreeDecomposition {
            bags: Vec::new(),
            edges: Vec::new(),
        };
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    let mut eg = ElimGraph::new(g);
    let mut bags: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut parent_vertex: Vec<Option<usize>> = Vec::with_capacity(n);
    for &v in order {
        let neigh = eg.eliminate(v);
        let mut bag = neigh.clone();
        bag.push(v);
        bag.sort_unstable();
        bags.push(bag);
        parent_vertex.push(neigh.iter().copied().min_by_key(|&u| pos[u]));
    }
    // bag index of vertex v is pos[v]
    let mut edges = Vec::new();
    let mut roots = Vec::new();
    for (i, pv) in parent_vertex.iter().enumerate() {
        match pv {
            Some(u) => edges.push((i, pos[*u])),
            None => roots.push(i),
        }
    }
    for w in roots.windows(2) {
        edges.push((w[0], w[1]));
    }
    TreeDecomposition { bags, edges }
}

/// Best heuristic decomposition (min of min-degree and min-fill widths).
pub fn treewidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let d1 = decomposition_from_order(g, &min_degree_order(g));
    let d2 = decomposition_from_order(g, &min_fill_order(g));
    if d1.width() <= d2.width() {
        (d1.width(), d1)
    } else {
        (d2.width(), d2)
    }
}

/// The degeneracy (MMD) lower bound on treewidth.
pub fn treewidth_lower_bound(g: &Graph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut eg = ElimGraph::new(g);
    // For the lower bound we *remove* (not eliminate) min-degree vertices.
    let mut best = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| eg.alive[v])
            .min_by_key(|&v| eg.degree(v))
            // lint:allow(unwrap): the loop runs only while some vertex is alive
            .unwrap();
        best = best.max(eg.degree(v));
        // plain removal: mark dead without fill
        eg.alive[v] = false;
    }
    best
}

/// Exact treewidth with a witnessing decomposition, via memoized search
/// over elimination orders (“`tw(G) ≤ k` iff some elimination order has all
/// elimination degrees ≤ k”).
///
/// # Panics
/// Panics if `g` has more than 64 vertices — query abstractions in this
/// workspace are far smaller; use [`treewidth_upper_bound`] for big graphs.
pub fn treewidth_exact(g: &Graph) -> (usize, TreeDecomposition) {
    let n = g.num_vertices();
    assert!(n <= 64, "exact treewidth limited to 64 vertices");
    if n == 0 {
        return (
            0,
            TreeDecomposition {
                bags: Vec::new(),
                edges: Vec::new(),
            },
        );
    }
    let lower = treewidth_lower_bound(g);
    let (upper, upper_dec) = treewidth_upper_bound(g);
    if lower == upper {
        return (upper, upper_dec);
    }
    for k in lower..upper {
        if let Some(order) = order_with_width(g, k) {
            let dec = decomposition_from_order(g, &order);
            debug_assert!(dec.width() <= k);
            return (dec.width(), dec);
        }
    }
    (upper, upper_dec)
}

/// Searches for an elimination order with all elimination degrees ≤ k.
fn order_with_width(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.num_vertices();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut failed: HashSet<u64> = HashSet::new();
    let mut order = Vec::with_capacity(n);
    if search(g, 0, full, k, &mut failed, &mut order) {
        Some(order)
    } else {
        None
    }
}

/// Elimination degree of `v` given eliminated-set `elim`: the number of
/// distinct non-eliminated vertices reachable from `v` through eliminated
/// vertices (this is `v`'s neighbourhood in the elimination graph).
fn elim_degree(g: &Graph, v: usize, elim: u64) -> usize {
    let mut seen_elim: u64 = 0;
    let mut result: u64 = 0;
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        for &w in g.neighbors(u) {
            if w == v {
                continue;
            }
            let bit = 1u64 << w;
            if elim & bit != 0 {
                if seen_elim & bit == 0 {
                    seen_elim |= bit;
                    stack.push(w);
                }
            } else {
                result |= bit;
            }
        }
    }
    result.count_ones() as usize
}

fn search(
    g: &Graph,
    elim: u64,
    full: u64,
    k: usize,
    failed: &mut HashSet<u64>,
    order: &mut Vec<usize>,
) -> bool {
    if elim == full {
        return true;
    }
    if failed.contains(&elim) {
        return false;
    }
    let n = g.num_vertices();
    // Safe-elimination rule: a vertex of elimination degree ≤ 1 can always
    // be eliminated first without loss of optimality.
    for v in 0..n {
        if elim & (1u64 << v) != 0 {
            continue;
        }
        if elim_degree(g, v, elim) <= 1.min(k) {
            order.push(v);
            if search(g, elim | (1u64 << v), full, k, failed, order) {
                return true;
            }
            order.pop();
            failed.insert(elim);
            return false;
        }
    }
    for v in 0..n {
        if elim & (1u64 << v) != 0 {
            continue;
        }
        if elim_degree(g, v, elim) <= k {
            order.push(v);
            if search(g, elim | (1u64 << v), full, k, failed, order) {
                return true;
            }
            order.pop();
        }
    }
    failed.insert(elim);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_exact(g: &Graph, expected: usize) {
        let (w, dec) = treewidth_exact(g);
        assert_eq!(w, expected, "treewidth mismatch");
        dec.validate(g).expect("invalid decomposition");
        assert_eq!(dec.width(), w);
        assert!(treewidth_lower_bound(g) <= w);
        let (ub, ubdec) = treewidth_upper_bound(g);
        assert!(ub >= w);
        ubdec.validate(g).expect("invalid heuristic decomposition");
    }

    #[test]
    fn known_treewidths() {
        check_exact(&Graph::path(6), 1);
        check_exact(&Graph::cycle(6), 2);
        check_exact(&Graph::complete(5), 4);
        check_exact(&Graph::grid(3, 3), 3);
        check_exact(&Graph::grid(4, 4), 4);
        check_exact(&Graph::new(4), 0); // edgeless
    }

    #[test]
    fn single_vertex_and_empty() {
        check_exact(&Graph::new(1), 0);
        let (w, dec) = treewidth_exact(&Graph::new(0));
        assert_eq!(w, 0);
        dec.validate(&Graph::new(0)).unwrap();
    }

    #[test]
    fn disconnected_graph() {
        // K4 ⊎ P3: treewidth 3
        let mut g = Graph::new(7);
        g.add_clique(&[0, 1, 2, 3]);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        check_exact(&g, 3);
    }

    #[test]
    fn star_graph() {
        let mut g = Graph::new(6);
        for i in 1..6 {
            g.add_edge(0, i);
        }
        check_exact(&g, 1);
    }

    #[test]
    fn complete_bipartite_k33() {
        let mut g = Graph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        check_exact(&g, 3);
    }

    #[test]
    fn validation_catches_bad_decompositions() {
        let g = Graph::path(3);
        // missing edge coverage
        let bad = TreeDecomposition {
            bags: vec![vec![0, 1], vec![2]],
            edges: vec![(0, 1)],
        };
        assert!(bad.validate(&g).is_err());
        // disconnected occurrences of vertex 0
        let bad2 = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0]],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(bad2.validate(&g).is_err());
        // not a tree (cycle)
        let bad3 = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]],
            edges: vec![(0, 1), (1, 2), (2, 0)],
        };
        assert!(bad3.validate(&g).is_err());
        // valid one
        let good = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2]],
            edges: vec![(0, 1)],
        };
        good.validate(&g).unwrap();
    }

    #[test]
    fn heuristic_orders_cover_all_vertices() {
        let g = Graph::grid(3, 3);
        let mut o1 = min_degree_order(&g);
        let mut o2 = min_fill_order(&g);
        o1.sort_unstable();
        o2.sort_unstable();
        let all: Vec<usize> = (0..9).collect();
        assert_eq!(o1, all);
        assert_eq!(o2, all);
    }

    #[test]
    fn lower_bound_examples() {
        assert_eq!(treewidth_lower_bound(&Graph::complete(5)), 4);
        assert_eq!(treewidth_lower_bound(&Graph::cycle(6)), 2);
        assert_eq!(treewidth_lower_bound(&Graph::path(6)), 1);
    }
}
