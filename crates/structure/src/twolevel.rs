//! Two-level multi-hypergraphs and the paper's structural measures.

use crate::graphs::{Graph, MultiGraph};

/// A two-level multi-hypergraph `G = (V, E, H, η, ν)` (§2 of the paper):
/// `(V, E, η)` is a multigraph (first-level edges `E` between vertices, the
/// path variables of a query), and `(E, H, ν)` is a multi-hypergraph
/// (second-level hyperedges `H` over first-level edges, the relation atoms).
///
/// First-level edges are *directed* pairs here because reachability atoms
/// `x →π y` are directed; the measures only use the underlying undirected
/// structure, matching the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelGraph {
    num_vertices: usize,
    /// `η`: endpoints of each first-level edge (source, target).
    edges: Vec<(usize, usize)>,
    /// `ν`: each hyperedge is a non-empty set of first-level edge indices
    /// (stored sorted, duplicates removed — `ν(h) ∈ φ(E)`).
    hyperedges: Vec<Vec<usize>>,
}

/// The connected-component structure of `G^rel = (E, H, ν)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelComponents {
    /// Component index of each first-level edge.
    pub comp_of_edge: Vec<usize>,
    /// Component index of each hyperedge.
    pub comp_of_hedge: Vec<usize>,
    /// For each component: sorted member edges.
    pub edges: Vec<Vec<usize>>,
    /// For each component: sorted member hyperedges.
    pub hedges: Vec<Vec<usize>>,
}

impl TwoLevelGraph {
    /// Creates a 2L graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        TwoLevelGraph {
            num_vertices,
            edges: Vec::new(),
            hyperedges: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of first-level edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of hyperedges `|H|`.
    pub fn num_hyperedges(&self) -> usize {
        self.hyperedges.len()
    }

    /// Adds a first-level edge `src → dst`, returning its index.
    pub fn add_edge(&mut self, src: usize, dst: usize) -> usize {
        assert!(src < self.num_vertices && dst < self.num_vertices);
        self.edges.push((src, dst));
        self.edges.len() - 1
    }

    /// Adds a hyperedge over the given first-level edges, returning its
    /// index.
    ///
    /// # Panics
    /// Panics if `members` is empty or refers to a missing edge.
    pub fn add_hyperedge(&mut self, members: &[usize]) -> usize {
        assert!(
            !members.is_empty(),
            "hyperedges are non-empty (ν : H → φ(E))"
        );
        assert!(members.iter().all(|&e| e < self.edges.len()));
        let mut m = members.to_vec();
        m.sort_unstable();
        m.dedup();
        self.hyperedges.push(m);
        self.hyperedges.len() - 1
    }

    /// Endpoints `η(e)` of first-level edge `e`.
    pub fn edge(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Members `ν(h)` of hyperedge `h`.
    pub fn hyperedge(&self, h: usize) -> &[usize] {
        &self.hyperedges[h]
    }

    /// Connected components of `G^rel`: two first-level edges are connected
    /// when some chain of hyperedges links them; a hyperedge belongs to the
    /// component of its members. Hyperedge-free edges form singleton
    /// components.
    pub fn rel_components(&self) -> RelComponents {
        let ne = self.edges.len();
        let mut uf = UnionFind::new(ne);
        for h in &self.hyperedges {
            for w in h.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        // Dense component ids in first-seen order of edges.
        let mut comp_id = vec![usize::MAX; ne];
        let mut comp_of_edge = vec![0usize; ne];
        let mut edges: Vec<Vec<usize>> = Vec::new();
        for (e, slot) in comp_of_edge.iter_mut().enumerate() {
            let root = uf.find(e);
            if comp_id[root] == usize::MAX {
                comp_id[root] = edges.len();
                edges.push(Vec::new());
            }
            *slot = comp_id[root];
            edges[comp_id[root]].push(e);
        }
        let mut hedges: Vec<Vec<usize>> = vec![Vec::new(); edges.len()];
        let mut comp_of_hedge = Vec::with_capacity(self.hyperedges.len());
        for (hi, h) in self.hyperedges.iter().enumerate() {
            let c = comp_of_edge[h[0]];
            debug_assert!(h.iter().all(|&e| comp_of_edge[e] == c));
            comp_of_hedge.push(c);
            hedges[c].push(hi);
        }
        RelComponents {
            comp_of_edge,
            comp_of_hedge,
            edges,
            hedges,
        }
    }

    /// `cc_vertex(G)`: the maximum number of vertices of `G^rel` (i.e.
    /// first-level edges / path variables) in one connected component of
    /// `G^rel`. Zero for an edge-free graph.
    pub fn cc_vertex(&self) -> usize {
        self.rel_components()
            .edges
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// `cc_hedge(G)`: the maximum number of hyperedges in one connected
    /// component of `G^rel`.
    pub fn cc_hedge(&self) -> usize {
        self.rel_components()
            .hedges
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// `G^node`: the graph on `V` where, for every connected component of
    /// `G^rel` containing at least one hyperedge, the vertices incident to
    /// the component's edges form a clique (§3, “2L graph measures”).
    pub fn node_graph(&self) -> Graph {
        let comps = self.rel_components();
        let mut g = Graph::new(self.num_vertices);
        for (c, edge_list) in comps.edges.iter().enumerate() {
            if comps.hedges[c].is_empty() {
                continue; // the formal definition requires hyperedges h, h'
            }
            let mut verts: Vec<usize> = edge_list
                .iter()
                .flat_map(|&e| {
                    let (u, v) = self.edges[e];
                    [u, v]
                })
                .collect();
            verts.sort_unstable();
            verts.dedup();
            g.add_clique(&verts);
        }
        g
    }

    /// `G^collapse` (§5.2): the bipartite multigraph on `V ⊎ C` (`C` = the
    /// connected components of `G^rel`) where each first-level edge
    /// `η(e) = (v, v′)` in component `c` is split into the two edges
    /// `{v, c}` and `{v′, c}`. Component vertices are numbered
    /// `num_vertices ..`.
    pub fn collapse(&self) -> MultiGraph {
        let comps = self.rel_components();
        let mut m = MultiGraph::new(self.num_vertices + comps.edges.len());
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let c = self.num_vertices + comps.comp_of_edge[e];
            m.add_edge(u, c);
            m.add_edge(v, c);
        }
        m
    }

    /// The merged graph `Ĝ` of §4: every connected component of `G^rel` is
    /// replaced by a single hyperedge over all its edges. Returned as a new
    /// 2L graph with the same vertices and first-level edges.
    pub fn merged(&self) -> TwoLevelGraph {
        let comps = self.rel_components();
        let mut g = TwoLevelGraph::new(self.num_vertices);
        g.edges = self.edges.clone();
        for (c, edge_list) in comps.edges.iter().enumerate() {
            if !comps.hedges[c].is_empty() {
                g.add_hyperedge(edge_list);
            }
        }
        g
    }
}

/// Union-find with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of §3 (“2L graph measures”): five path variables
    /// π₁..π₅; hyperedges {π₁}, {π₂, π₃}, {π₃, π₄}, {π₅} — giving
    /// cc_vertex = 3 and cc_hedge = 2, witnessed by {π₂, π₃, π₄}.
    fn paper_example() -> TwoLevelGraph {
        let mut g = TwoLevelGraph::new(6);
        let p1 = g.add_edge(0, 1);
        let p2 = g.add_edge(1, 2);
        let p3 = g.add_edge(2, 3);
        let p4 = g.add_edge(3, 4);
        let p5 = g.add_edge(4, 5);
        g.add_hyperedge(&[p1]);
        g.add_hyperedge(&[p2, p3]);
        g.add_hyperedge(&[p3, p4]);
        g.add_hyperedge(&[p5]);
        g
    }

    #[test]
    fn paper_example_measures() {
        let g = paper_example();
        assert_eq!(g.cc_vertex(), 3);
        assert_eq!(g.cc_hedge(), 2);
    }

    #[test]
    fn rel_components_structure() {
        let g = paper_example();
        let c = g.rel_components();
        assert_eq!(c.edges.len(), 3);
        // component containing π2..π4
        let big = c.comp_of_edge[1];
        assert_eq!(c.comp_of_edge[2], big);
        assert_eq!(c.comp_of_edge[3], big);
        assert_ne!(c.comp_of_edge[0], big);
        assert_eq!(c.edges[big], vec![1, 2, 3]);
        assert_eq!(c.hedges[big].len(), 2);
    }

    #[test]
    fn hyperedge_free_edges_are_singletons() {
        let mut g = TwoLevelGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.cc_vertex(), 1);
        assert_eq!(g.cc_hedge(), 0);
        // no hyperedges ⇒ G^node has no edges (formal definition)
        assert_eq!(g.node_graph().num_edges(), 0);
    }

    #[test]
    fn node_graph_cliques() {
        let g = paper_example();
        let ng = g.node_graph();
        // component {π2,π3,π4} touches vertices 1..=4 → K4 on them;
        // π1 → clique {0,1}; π5 → clique {4,5}.
        assert!(ng.has_edge(1, 4));
        assert!(ng.has_edge(2, 3));
        assert!(ng.has_edge(0, 1));
        assert!(ng.has_edge(4, 5));
        assert!(!ng.has_edge(0, 2));
        assert!(!ng.has_edge(3, 5));
        assert_eq!(ng.num_edges(), 6 + 2);
    }

    #[test]
    fn collapse_structure() {
        let g = paper_example();
        let m = g.collapse();
        // 6 node vertices + 3 component vertices; 2 multigraph edges per
        // first-level edge.
        assert_eq!(m.num_vertices(), 9);
        assert_eq!(m.num_edges(), 10);
        // π1's component vertex links 0 and 1
        let comps = g.rel_components();
        let c_p1 = 6 + comps.comp_of_edge[0];
        assert_eq!(m.multiplicity(0, c_p1), 1);
        assert_eq!(m.multiplicity(1, c_p1), 1);
    }

    #[test]
    fn collapse_self_loop_edge_doubles() {
        // η(e) = (v, v): the split produces {v,c} twice.
        let mut g = TwoLevelGraph::new(1);
        let e = g.add_edge(0, 0);
        g.add_hyperedge(&[e]);
        let m = g.collapse();
        assert_eq!(m.multiplicity(0, 1), 2);
    }

    #[test]
    fn merged_collapses_components() {
        let g = paper_example();
        let m = g.merged();
        assert_eq!(m.num_hyperedges(), 3);
        assert_eq!(m.cc_hedge(), 1);
        assert_eq!(m.cc_vertex(), 3);
        // merging must not change G^node
        assert_eq!(m.node_graph().edges(), g.node_graph().edges());
    }

    #[test]
    fn union_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 3));
        uf.union(1, 3);
        assert!(uf.same(0, 4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_hyperedge_panics() {
        let mut g = TwoLevelGraph::new(1);
        g.add_hyperedge(&[]);
    }
}
