//! The repo lint pass: rules clippy can't express because they encode
//! project policy, not Rust style.
//!
//! Every rule is a pure function from `(path, content)` to violations, so
//! the tests can seed one violation per rule without touching the tree.

/// One finding of the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 = whole-file finding).
    pub line: usize,
    /// What rule fired and why.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        }
    }
}

/// Crates this repo owns (not the offline stand-ins for crates.io
/// dependencies, which mirror external APIs and are exempt from policy).
pub const OWN_CRATES: &[&str] = &[
    "analyze",
    "automata",
    "bench",
    "core",
    "graph",
    "query",
    "reductions",
    "structure",
    "workloads",
    "xtask",
];

/// Modules on the product-search hot path: their maps are keyed by dense
/// integers, where FNV beats SipHash by a wide margin (see DESIGN.md).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/product.rs",
    "crates/core/src/semijoin.rs",
    "crates/graph/src/db.rs",
];

/// Marker that exempts one audited `unwrap`/`expect` from [`lint_unwrap`].
/// Put it at the end of the offending line or on the line just above, with
/// a word on why the panic is unreachable.
pub const ALLOW_MARKER: &str = "lint:allow(unwrap)";

/// Modules whose worklist loops sit on the governed evaluation hot path:
/// an unguarded loop there can run arbitrarily long without ever
/// discovering that a deadline or budget tripped.
pub const BUDGET_HOT_FILES: &[&str] = &[
    "crates/core/src/product.rs",
    "crates/core/src/semijoin.rs",
    "crates/core/src/cq_eval.rs",
    "crates/core/src/bitbfs.rs",
];

/// Marker that exempts one audited loop from [`lint_budget_checkpoints`].
/// Put it on the loop header line or the first line of the body, with a
/// word on why the loop is bounded (e.g. O(path-length) reconstruction).
pub const ALLOW_UNGUARDED: &str = "lint:allow(unguarded-loop)";

/// Rule 1: a crate entry point must start its attribute block with
/// `#![forbid(unsafe_code)]`. Applies to `lib.rs`/`main.rs` of own crates.
pub fn lint_forbid_unsafe(path: &str, content: &str) -> Vec<Violation> {
    if content.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Violation {
        file: path.to_string(),
        line: 0,
        message: "crate entry point is missing `#![forbid(unsafe_code)]`".to_string(),
    }]
}

/// Rule 2: hot-path modules must not use the default (SipHash) hasher —
/// `HashMap`/`HashSet` there must be the FNV aliases.
pub fn lint_default_hasher(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let code = strip_comment(line);
        for needle in ["HashMap", "HashSet"] {
            for pos in match_positions(code, needle) {
                // FnvHashMap / FnvHashSet are exactly the point of the rule
                if pos >= 3 && &code[pos - 3..pos] == "Fnv" {
                    continue;
                }
                // `use crate::fnv::...` re-export sites name the alias target
                if code.trim_start().starts_with("use ") && code.contains("fnv") {
                    continue;
                }
                out.push(Violation {
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "default-hasher `{needle}` on the hot path — use the FNV alias \
                         from `fnv::` instead"
                    ),
                });
            }
        }
    }
    out
}

/// Rule 3: no `.unwrap()` / `.expect(` in library code outside tests.
/// `#[cfg(test)]` blocks are skipped by brace tracking; comment lines are
/// skipped; an audited case carries the [`ALLOW_MARKER`] on its line or
/// the line above.
pub fn lint_unwrap(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            // the cfg(test) item is over once we fall back to its depth
            // after having entered it
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        let trimmed = line.trim_start();
        let in_comment =
            trimmed.starts_with("//") || trimmed.starts_with("///") || trimmed.starts_with("//!");
        if !in_comment {
            for needle in [".unwrap()", ".expect("] {
                if code.contains(needle) {
                    let allowed = line.contains(ALLOW_MARKER)
                        || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
                    if !allowed {
                        out.push(Violation {
                            file: path.to_string(),
                            line: i + 1,
                            message: format!(
                                "`{needle}` in library code — handle the error, or audit it \
                                 with `// {ALLOW_MARKER}: why this cannot panic`"
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Rule 4: build artifacts must not be tracked. `tracked` is the output of
/// `git ls-files` split into lines.
pub fn lint_tracked_target<'a>(tracked: impl Iterator<Item = &'a str>) -> Vec<Violation> {
    tracked
        .filter(|p| p.starts_with("target/") || p.contains("/target/"))
        .map(|p| Violation {
            file: p.to_string(),
            line: 0,
            message: "build artifact tracked by git — `git rm --cached` it; `/target` is \
                      ignored via .gitignore"
                .to_string(),
        })
        .collect()
}

/// Rule 5: every `while let Some(` worklist loop in a
/// [`BUDGET_HOT_FILES`] module must check in with the budget governor
/// somewhere in its body — a `.tick(`, `checkpoint(` or `stopped(` call —
/// or carry the [`ALLOW_UNGUARDED`] audit marker on its header or first
/// body line. Worklist loops are where evaluation time actually goes; one
/// that never checks in turns a 50 ms deadline into "whenever the loop
/// drains".
pub fn lint_budget_checkpoints(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    for (idx, header) in lines.iter().enumerate() {
        let code = strip_comment(header);
        if !code.contains("while let Some(") {
            continue;
        }
        if header.contains(ALLOW_UNGUARDED)
            || lines
                .get(idx + 1)
                .is_some_and(|l| l.contains(ALLOW_UNGUARDED))
        {
            continue;
        }
        // brace-track the loop body: from the header line until the depth
        // falls back to zero after having opened
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut guarded = false;
        for body_line in &lines[idx..] {
            let body_code = strip_comment(body_line);
            for needle in [".tick(", ".tick_traced(", "checkpoint(", "stopped("] {
                if body_code.contains(needle) {
                    guarded = true;
                }
            }
            depth += body_code.matches('{').count() as i64;
            depth -= body_code.matches('}').count() as i64;
            if depth > 0 {
                opened = true;
            }
            if opened && depth <= 0 {
                break;
            }
        }
        if !guarded {
            out.push(Violation {
                file: path.to_string(),
                line: idx + 1,
                message: format!(
                    "unguarded worklist loop on the budget hot path — call `pacer.tick()` \
                     (or `checkpoint`/`stopped`) in the body, or audit it with \
                     `// {ALLOW_UNGUARDED}: why the loop is bounded`"
                ),
            });
        }
    }
    out
}

/// Modules on the evaluation hot path that must not read the wall clock
/// directly: all timing goes through the tracer's `PhaseSpan`, which is
/// compiled out under `NoopTracer`. A raw `Instant::now()` here is paid
/// on every run, traced or not — exactly the overhead the observability
/// layer exists to avoid.
pub const CLOCK_HOT_FILES: &[&str] = &[
    "crates/core/src/product.rs",
    "crates/core/src/semijoin.rs",
    "crates/core/src/cq_eval.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/bitbfs.rs",
];

/// Marker that exempts one audited clock read from [`lint_raw_clock`].
/// Put it on the offending line or the line just above, with a word on
/// why the read is off the per-configuration path.
pub const ALLOW_RAW_CLOCK: &str = "lint:allow(raw-clock)";

/// Rule 6: no direct `Instant::now()` / `SystemTime::now()` in a
/// [`CLOCK_HOT_FILES`] module. Phase timing belongs in `trace::PhaseSpan`
/// (zero-cost when tracing is off); deadline checks belong in the
/// governor. Comment lines are skipped; an audited read carries the
/// [`ALLOW_RAW_CLOCK`] marker on its line or the line above.
pub fn lint_raw_clock(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        let hit = ["Instant::now()", "SystemTime::now()"]
            .iter()
            .find(|n| code.contains(*n));
        let Some(needle) = hit else { continue };
        let allowed =
            line.contains(ALLOW_RAW_CLOCK) || (idx > 0 && lines[idx - 1].contains(ALLOW_RAW_CLOCK));
        if !allowed {
            out.push(Violation {
                file: path.to_string(),
                line: idx + 1,
                message: format!(
                    "`{needle}` on the evaluation hot path — time phases with \
                     `trace::PhaseSpan` (free under `NoopTracer`), or audit it with \
                     `// {ALLOW_RAW_CLOCK}: why this read is off the hot loop`"
                ),
            });
        }
    }
    out
}

/// Modules holding the bit-parallel BFS kernel: their inner loops are
/// word-at-a-time by design, and a per-element map probe there silently
/// reintroduces the scalar access pattern the kernel exists to avoid
/// (one cache miss per configuration instead of per 64).
pub const BITPARALLEL_HOT_FILES: &[&str] = &["crates/core/src/bitbfs.rs"];

/// Marker that exempts one audited scalar probe from
/// [`lint_scalar_probe`]. Put it on the offending line or the line just
/// above, with a word on why the probe is off the per-word path.
pub const ALLOW_SCALAR_PROBE: &str = "lint:allow(scalar-probe)";

/// Rule 7: no per-element map/set probes — `.get(` or `.insert(` — in a
/// [`BITPARALLEL_HOT_FILES`] module. Kernel state belongs in dense
/// word-indexed arrays (`BitSet`, the bump arena, CSR slices); a probe
/// per configuration is exactly the scalar layout the kernel replaces.
/// `#[cfg(test)]` blocks and comment lines are skipped; an audited probe
/// carries the [`ALLOW_SCALAR_PROBE`] marker on its line or the line
/// above.
pub fn lint_scalar_probe(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        for needle in [".get(", ".insert("] {
            if code.contains(needle) {
                let allowed = line.contains(ALLOW_SCALAR_PROBE)
                    || (i > 0 && lines[i - 1].contains(ALLOW_SCALAR_PROBE));
                if !allowed {
                    out.push(Violation {
                        file: path.to_string(),
                        line: i + 1,
                        message: format!(
                            "scalar probe `{needle}` in the bit-parallel kernel — keep state \
                             in dense word-indexed arrays, or audit it with \
                             `// {ALLOW_SCALAR_PROBE}: why this probe is off the per-word path`"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Modules implementing the streaming answer enumerator: their contract
/// is constant-memory, per-tuple yielding — materializing intermediate
/// answer vectors there silently turns "streaming" back into "collect
/// everything, then iterate", which is exactly what the enumerator
/// replaces (and what lets `max_answers` overshoot).
pub const ENUMERATOR_FILES: &[&str] = &["crates/core/src/enumerate.rs"];

/// Marker that exempts one audited materialization from
/// [`lint_materialize`]. Put it on the offending line or the line just
/// above, with a word on why the allocation is bounded (e.g. once per
/// query, O(#vars), not per answer).
pub const ALLOW_MATERIALIZE: &str = "lint:allow(materialize)";

/// Rule 8: no `.collect::<Vec` / `.push(` in an [`ENUMERATOR_FILES`]
/// module — the streaming enumerator must yield tuples one at a time, not
/// buffer them. Setup-time allocations (the step program, per-variable
/// domains) are audited with the [`ALLOW_MATERIALIZE`] marker on the line
/// or the line above; `#[cfg(test)]` blocks and comment lines are
/// skipped.
pub fn lint_materialize(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        for needle in [".collect::<Vec", ".push("] {
            if code.contains(needle) {
                let allowed = line.contains(ALLOW_MATERIALIZE)
                    || (i > 0 && lines[i - 1].contains(ALLOW_MATERIALIZE));
                if !allowed {
                    out.push(Violation {
                        file: path.to_string(),
                        line: i + 1,
                        message: format!(
                            "`{needle}` in the streaming enumerator — yield tuples instead of \
                             buffering them, or audit a setup-time allocation with \
                             `// {ALLOW_MATERIALIZE}: why this is bounded`"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Files implementing semantics-changing query rewrites. Every site that
/// applies a rewrite (drops, replaces, or admits a candidate query) must
/// be dominated by a containment-verification call in the same function —
/// the soundness discipline of the regime minimizer and the optimizer.
pub const REWRITE_FILES: &[&str] = &[
    "crates/core/src/optimize.rs",
    "crates/analyze/src/minimize.rs",
];

/// Marker that exempts one audited rewrite application from
/// [`lint_unverified_rewrite`]. Put it on the offending line or the line
/// just above, with a word on why the rewrite is sound without a
/// containment check (e.g. pure bookkeeping, no language change).
pub const ALLOW_UNVERIFIED: &str = "lint:allow(unverified-rewrite)";

/// Tokens that apply a rewrite: marking an atom dropped, or admitting a
/// candidate query into the search frontier.
const REWRITE_APPLY: &[&str] = &["dropped[", "candidates.push("];

/// Tokens that verify containment: any of these between the enclosing
/// `fn` line and the application site counts as domination.
const REWRITE_VERIFY: &[&str] = &[
    "is_subset_of",
    "verify_equiv",
    "is_universal",
    ".equivalent(",
];

/// Rule 9: in a [`REWRITE_FILES`] module, every rewrite-application site
/// (see [`REWRITE_APPLY`]) must have a containment-verification call (see
/// [`REWRITE_VERIFY`]) earlier in the same function — a rewrite admitted
/// without two-way language inclusion is unsound by construction.
/// Audited exceptions carry [`ALLOW_UNVERIFIED`] on the line or the line
/// above; `#[cfg(test)]` blocks and comment lines are skipped.
pub fn lint_unverified_rewrite(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        for needle in REWRITE_APPLY {
            if !code.contains(needle) {
                continue;
            }
            let allowed = line.contains(ALLOW_UNVERIFIED)
                || (i > 0 && lines[i - 1].contains(ALLOW_UNVERIFIED));
            if allowed {
                continue;
            }
            // scan back to the enclosing `fn` line; any verification
            // token in that window dominates the application site
            let fn_line = (0..=i)
                .rev()
                .find(|&j| strip_comment(lines[j]).contains("fn "))
                .unwrap_or(0);
            let verified = (fn_line..=i).any(|j| {
                let c = strip_comment(lines[j]);
                REWRITE_VERIFY.iter().any(|v| c.contains(v))
            });
            if !verified {
                out.push(Violation {
                    file: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{needle}` rewrite application without a containment check earlier \
                         in the function — verify with two-way language inclusion, or audit \
                         with `// {ALLOW_UNVERIFIED}: why this is sound`"
                    ),
                });
            }
        }
        i += 1;
    }
    out
}

/// Files that implement the long-lived query service. Their per-request
/// path must never re-parse or re-compile: compilation belongs to the
/// cold path behind the prepared-plan cache, executed once per distinct
/// query text.
pub const SERVER_FILES: &[&str] = &["crates/core/src/server.rs"];

/// Marker that exempts one audited compilation site from
/// [`lint_cold_path`]. Put it on the offending line or the line just
/// above, with a word on why the site runs once per distinct query (not
/// once per request).
pub const ALLOW_COLD_PATH: &str = "lint:allow(cold-path)";

/// Tokens that do query-compilation work: any parsing (including key
/// normalization via `unparse`) and plan compilation. A request that hits
/// the cache must touch none of these.
const COLD_PATH_TOKENS: &[&str] = &["parse", "PreparedQuery::build"];

/// Rule 10: in a [`SERVER_FILES`] module, every compilation-work site
/// (see [`COLD_PATH_TOKENS`]) must be an audited cold-path site carrying
/// [`ALLOW_COLD_PATH`] on the line or the line above — otherwise a cache
/// hit would silently repeat the work the cache exists to amortize.
/// Import lines (`use …` names `parse_query` legitimately),
/// `#[cfg(test)]` blocks and comment lines are skipped.
pub fn lint_cold_path(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            i += 1;
            continue;
        }
        for needle in COLD_PATH_TOKENS {
            if !code.contains(needle) {
                continue;
            }
            let allowed =
                line.contains(ALLOW_COLD_PATH) || (i > 0 && lines[i - 1].contains(ALLOW_COLD_PATH));
            if !allowed {
                out.push(Violation {
                    file: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{needle}` compilation work in the query service — move it behind \
                         the prepared-plan cache, or audit the cold-path site with \
                         `// {ALLOW_COLD_PATH}: why this runs once per distinct query`"
                    ),
                });
            }
            break; // one violation per line is enough
        }
        i += 1;
    }
    out
}

/// Files that drive experiments. All experiment configuration goes
/// through the declarative specs under `experiments/` and all trajectory
/// JSON through the harness aggregator — these bins must not grow back
/// the hand-rolled `ECRPQ_E*` env knobs or ad-hoc JSON writers the
/// harness replaced.
pub const EXPERIMENT_BIN_FILES: &[&str] = &[
    "crates/bench/src/bin/experiments.rs",
    "crates/bench/src/bin/harness.rs",
];

/// Marker that exempts one audited site from [`lint_harness_bypass`].
/// Put it on the offending line or the line just above, with a word on
/// why the site legitimately bypasses the spec/aggregate contract.
pub const ALLOW_HARNESS_BYPASS: &str = "lint:allow(harness-bypass)";

/// Rule 11: experiment bins (see [`EXPERIMENT_BIN_FILES`]) must not read
/// per-experiment `ECRPQ_E<digit>…` environment variables (sizes and
/// output paths live in the spec's `[workload]`/`[smoke]` tables) and
/// must not write files directly (per-trial and aggregate JSON is
/// written by `ecrpq_bench::harness` under its content-addressed keys) —
/// unless the site carries [`ALLOW_HARNESS_BYPASS`]. Comment lines and
/// `#[cfg(test)]` blocks are skipped.
pub fn lint_harness_bypass(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0usize;
    let mut skip_depth: Option<i64> = None; // brace depth at cfg(test) entry
    let mut depth: i64 = 0;
    while i < lines.len() {
        let line = lines[i];
        let code = strip_comment(line);
        if skip_depth.is_none() && code.contains("#[cfg(test)]") {
            skip_depth = Some(depth);
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_depth {
            if depth <= d && closes > 0 {
                skip_depth = None;
            }
            i += 1;
            continue;
        }
        let allowed = line.contains(ALLOW_HARNESS_BYPASS)
            || (i > 0 && lines[i - 1].contains(ALLOW_HARNESS_BYPASS));
        let env_knob = match_positions(code, "ECRPQ_E")
            .into_iter()
            .any(|p| code[p + "ECRPQ_E".len()..].starts_with(|c: char| c.is_ascii_digit()));
        if env_knob && !allowed {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                message: format!(
                    "per-experiment env knob in an experiment bin — sizes belong in the \
                     spec's `[workload]`/`[smoke]` tables under `experiments/`, or audit \
                     with `// {ALLOW_HARNESS_BYPASS}: why`"
                ),
            });
        } else if code.contains("fs::write") && !allowed {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                message: format!(
                    "ad-hoc file write in an experiment bin — trajectory JSON is written \
                     by the harness aggregator under its content-addressed key, or audit \
                     with `// {ALLOW_HARNESS_BYPASS}: why`"
                ),
            });
        }
        i += 1;
    }
    out
}

/// Drops a trailing `// …` comment (naive: does not parse string
/// literals, which is fine for the policy rules above).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(p) => &line[..p],
        None => line,
    }
}

/// Byte offsets of every occurrence of `needle` in `hay`.
fn match_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = hay[start..].find(needle) {
        out.push(start + p);
        start += p + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbid_unsafe_fires_on_missing_attribute() {
        let v = lint_forbid_unsafe("crates/foo/src/lib.rs", "#![warn(missing_docs)]\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("forbid(unsafe_code)"));
        assert!(lint_forbid_unsafe("x", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn default_hasher_fires_on_std_map_but_not_fnv() {
        let bad = "    let m: HashMap<u32, u32> = HashMap::default();\n";
        let v = lint_default_hasher("crates/core/src/product.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        let good = "    let m: FnvHashMap<u32, u32> = FnvHashMap::default();\n";
        assert!(lint_default_hasher("crates/core/src/product.rs", good).is_empty());
        // comments and fnv re-export lines don't count
        assert!(lint_default_hasher("f", "// a HashMap here\n").is_empty());
        assert!(lint_default_hasher("f", "use crate::fnv::{FnvHashMap as HashMap};\n").is_empty());
    }

    #[test]
    fn unwrap_fires_outside_tests_only() {
        let src = "\
fn lib_code() {
    let x = foo().unwrap();
}
#[cfg(test)]
mod tests {
    fn t() {
        let y = bar().unwrap();
    }
}
";
        let v = lint_unwrap("crates/foo/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_respects_allow_marker_and_comments() {
        let audited = "\
fn f() {
    // lint:allow(unwrap): domain is never empty here
    let x = foo().unwrap();
    let y = bar().expect(\"always\"); // lint:allow(unwrap): invariant
}
";
        assert!(lint_unwrap("f", audited).is_empty());
        assert!(lint_unwrap("f", "// .unwrap() in prose\n").is_empty());
        assert!(lint_unwrap("f", "/// doc: .expect(reason)\n").is_empty());
        // unwrap_or_* are fine
        assert!(lint_unwrap("f", "let x = foo().unwrap_or(0);\n").is_empty());
        let v = lint_unwrap("f", "let x = foo().expect(\"boom\");\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn code_after_test_mod_is_linted_again() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { a().unwrap(); }
}
fn lib_code() {
    b().unwrap();
}
";
        let v = lint_unwrap("f", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn budget_checkpoint_fires_on_unguarded_worklist_loop() {
        let bad = "\
fn sweep() {
    while let Some(x) = stack.pop() {
        expand(x);
    }
}
";
        let v = lint_budget_checkpoints("crates/core/src/semijoin.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("unguarded worklist loop"));
    }

    #[test]
    fn budget_checkpoint_accepts_ticked_loops_and_markers() {
        let ticked = "\
fn sweep() {
    while let Some(x) = stack.pop() {
        if pacer.tick() {
            return None;
        }
        expand(x);
    }
}
";
        assert!(lint_budget_checkpoints("f", ticked).is_empty());
        let marked = "\
fn trace() {
    while let Some(p) = parent.get(&cur) {
        // lint:allow(unguarded-loop): O(path-length) trace rebuild
        cur = p;
    }
}
";
        assert!(lint_budget_checkpoints("f", marked).is_empty());
        // a checkpoint-flavoured call in a nested helper position counts
        let checkpointed = "\
fn drain() {
    while let Some(x) = q.pop_front() {
        if governor.checkpoint(1) {
            break;
        }
    }
}
";
        assert!(lint_budget_checkpoints("f", checkpointed).is_empty());
        // a guarded loop followed by an unguarded one: only the second fires
        let mixed = "\
fn both() {
    while let Some(x) = a.pop() {
        pacer.tick();
    }
    while let Some(y) = b.pop() {
        expand(y);
    }
}
";
        let v = lint_budget_checkpoints("f", mixed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn tick_traced_counts_as_a_checkpoint() {
        let traced = "\
fn sweep() {
    while let Some(x) = stack.pop() {
        if pacer.tick_traced(tracer, Phase::Semijoin) {
            return None;
        }
        expand(x);
    }
}
";
        assert!(lint_budget_checkpoints("crates/core/src/semijoin.rs", traced).is_empty());
    }

    #[test]
    fn raw_clock_fires_outside_the_tracer() {
        let bad = "fn f() {\n    let t0 = Instant::now();\n}\n";
        let v = lint_raw_clock("crates/core/src/product.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("PhaseSpan"));
        let sys = "let t = std::time::SystemTime::now();\n";
        assert_eq!(lint_raw_clock("f", sys).len(), 1);
    }

    #[test]
    fn raw_clock_respects_marker_and_comments() {
        let audited = "\
fn f() {
    // lint:allow(raw-clock): once per run, outside the search loop
    let t0 = Instant::now();
    let t1 = Instant::now(); // lint:allow(raw-clock): cold path
}
";
        assert!(lint_raw_clock("f", audited).is_empty());
        assert!(lint_raw_clock("f", "// Instant::now() in prose\n").is_empty());
        assert!(lint_raw_clock("f", "/// doc about Instant::now()\n").is_empty());
    }

    #[test]
    fn scalar_probe_fires_in_kernel_code() {
        let bad = "\
fn expand() {
    if visited.get(&idx).is_none() {
        frontier.insert(idx);
    }
}
";
        let v = lint_scalar_probe("crates/core/src/bitbfs.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert!(v[0].message.contains("scalar probe"));
    }

    #[test]
    fn scalar_probe_respects_marker_tests_and_comments() {
        let audited = "\
fn expand() {
    // lint:allow(scalar-probe): one lookup per atom, not per config
    let dense = tables.get(&atom);
    let x = cache.insert(k, v); // lint:allow(scalar-probe): setup path
}
";
        assert!(lint_scalar_probe("f", audited).is_empty());
        assert!(lint_scalar_probe("f", "// .get( in prose\n").is_empty());
        // word-at-a-time accessors are fine: the rule names probes only
        assert!(lint_scalar_probe("f", "let w = words.get_mut(i);\n").is_empty());
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t() {
        assert!(seen.insert(cfg));
    }
}
";
        assert!(lint_scalar_probe("f", test_only).is_empty());
    }

    #[test]
    fn materialize_fires_in_enumerator_code() {
        let bad = "\
fn drain() {
    let all = answers.iter().collect::<Vec<_>>();
    buffer.push(tuple);
}
";
        let v = lint_materialize("crates/core/src/enumerate.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert!(v[0].message.contains("streaming enumerator"));
    }

    #[test]
    fn materialize_respects_marker_tests_and_comments() {
        let audited = "\
fn build() {
    // lint:allow(materialize): once per query, O(#vars), not per answer
    let order = tree_order.collect::<Vec<_>>();
    steps.push(step); // lint:allow(materialize): setup-time step program
}
";
        assert!(lint_materialize("f", audited).is_empty());
        assert!(lint_materialize("f", "// .push( in prose\n").is_empty());
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t() {
        got.push(ans);
    }
}
";
        assert!(lint_materialize("f", test_only).is_empty());
    }

    #[test]
    fn tracked_target_fires_per_artifact() {
        let files = ["src/lib.rs", "target/debug/foo.d", "crates/a/src/lib.rs"];
        let v = lint_tracked_target(files.iter().copied());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, "target/debug/foo.d");
        assert!(lint_tracked_target(["src/lib.rs"].iter().copied()).is_empty());
    }

    #[test]
    fn unverified_rewrite_fires_without_domination() {
        let bad = "\
fn apply(atoms: &[Atom]) {
    dropped[0] = true;
    candidates.push((step, q2));
}
";
        let v = lint_unverified_rewrite("crates/core/src/optimize.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert!(v[0].message.contains("containment check"));
    }

    #[test]
    fn unverified_rewrite_accepts_dominated_sites() {
        let good = "\
fn apply(atoms: &[Atom]) {
    if atoms[i].rel.is_subset_of(&atoms[j].rel) {
        dropped[j] = true;
    }
    match verify_equiv(&a, &b, cfg) {
        Verdict::Verified => candidates.push((step, q2)),
        _ => {}
    }
}
";
        assert!(lint_unverified_rewrite("f", good).is_empty());
    }

    #[test]
    fn unverified_rewrite_respects_marker_tests_and_fn_boundaries() {
        let audited = "\
fn apply() {
    // lint:allow(unverified-rewrite): bookkeeping only, no language change
    dropped[0] = true;
}
";
        assert!(lint_unverified_rewrite("f", audited).is_empty());
        assert!(lint_unverified_rewrite("f", "// dropped[ in prose\n").is_empty());
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t() {
        candidates.push(x);
    }
}
";
        assert!(lint_unverified_rewrite("f", test_only).is_empty());
        // a verification in an *earlier* function must not dominate
        let other_fn = "\
fn checker(a: &SyncRel, b: &SyncRel) -> bool {
    a.is_subset_of(b)
}
fn apply() {
    dropped[0] = true;
}
";
        let v = lint_unverified_rewrite("f", other_fn);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn cold_path_fires_on_unaudited_compilation_work() {
        let bad = "\
fn handle(&self, text: &str) {
    let q = parse_query(text, &mut alphabet, &registry);
    let p = PreparedQuery::build(&q);
}
";
        let v = lint_cold_path("crates/core/src/server.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("`parse`"));
        assert_eq!(v[1].line, 3);
        assert!(v[1].message.contains("PreparedQuery::build"));
    }

    #[test]
    fn cold_path_respects_marker_imports_tests_and_comments() {
        let audited = "\
fn prepare_cold(&self, text: &str) {
    // lint:allow(cold-path): one parse per distinct query text
    let q = parse_query(text, &mut alphabet, &registry);
    // lint:allow(cold-path): compiled once, reused by every execution
    let p = PreparedQuery::build(&q);
}
";
        assert!(lint_cold_path("f", audited).is_empty());
        // import lines legitimately name parse_query; comments are prose
        assert!(lint_cold_path("f", "use ecrpq_query::{parse_query, unparse};\n").is_empty());
        assert!(lint_cold_path("f", "// the cache means no parse per request\n").is_empty());
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t() {
        let q = parse_query(text, &mut alphabet, &registry);
    }
}
";
        assert!(lint_cold_path("f", test_only).is_empty());
        // `unparse` carries the `parse` token: key normalization must be
        // audited too, and the marker on the same line also counts
        let same_line = "fn k(q: &Ecrpq) { unparse(q) } // lint:allow(cold-path): once per text\n";
        assert!(lint_cold_path("f", same_line).is_empty());
        let v = lint_cold_path("f", "fn k(q: &Ecrpq) -> String { unparse(q) }\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn harness_bypass_flags_env_knobs_and_adhoc_writes() {
        let bad = "\
fn e19_bitparallel() {
    let nodes = std::env::var(\"ECRPQ_E19_NODES\").ok();
    fs::write(\"BENCH_bitparallel.json\", body)?;
}
";
        let v = lint_harness_bypass("crates/bench/src/bin/experiments.rs", bad);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("env knob"));
        assert_eq!(v[1].line, 3);
        assert!(v[1].message.contains("file write"));
    }

    #[test]
    fn harness_bypass_requires_a_digit_after_the_prefix() {
        // the crate's own env namespace without an experiment number is
        // not a per-experiment knob (e.g. a hypothetical ECRPQ_EFFORT)
        assert!(lint_harness_bypass("f", "let v = env::var(\"ECRPQ_EFFORT\");\n").is_empty());
        let v = lint_harness_bypass("f", "let v = env::var(\"ECRPQ_E22_QPS\");\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn harness_bypass_respects_marker_tests_and_comments() {
        let audited = "\
fn dump() {
    // lint:allow(harness-bypass): debug dump behind an explicit flag
    fs::write(path, body)?;
    fs::write(other, body)?; // lint:allow(harness-bypass): same dump
}
";
        assert!(lint_harness_bypass("f", audited).is_empty());
        // comments are prose; cfg(test) fixtures may write scratch files
        assert!(lint_harness_bypass("f", "// replaced the ECRPQ_E19_NODES knob\n").is_empty());
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t() {
        fs::write(dir.join(\"spec.toml\"), src).unwrap();
    }
}
";
        assert!(lint_harness_bypass("f", test_only).is_empty());
        let v = lint_harness_bypass("f", "fn d() { fs::write(p, b) }\n");
        assert_eq!(v.len(), 1);
    }
}
