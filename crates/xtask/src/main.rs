#![forbid(unsafe_code)]

//! Repo automation. `cargo run -p xtask -- lint` runs the policy lints
//! over the workspace (see [`lint`] for the rules); nonzero exit on any
//! violation, so `scripts/check.sh` can gate on it.

mod lint;

use lint::{
    lint_budget_checkpoints, lint_cold_path, lint_default_hasher, lint_forbid_unsafe,
    lint_harness_bypass, lint_materialize, lint_raw_clock, lint_scalar_probe, lint_tracked_target,
    lint_unverified_rewrite, lint_unwrap, Violation, BITPARALLEL_HOT_FILES, BUDGET_HOT_FILES,
    CLOCK_HOT_FILES, ENUMERATOR_FILES, EXPERIMENT_BIN_FILES, HOT_PATH_FILES, OWN_CRATES,
    REWRITE_FILES, SERVER_FILES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut violations: Vec<Violation> = Vec::new();

    // Rule 1: crate entry points forbid unsafe code.
    let mut entries: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for c in OWN_CRATES {
        let lib = root.join(format!("crates/{c}/src/lib.rs"));
        let main = root.join(format!("crates/{c}/src/main.rs"));
        entries.push(if lib.exists() { lib } else { main });
    }
    for path in &entries {
        match std::fs::read_to_string(path) {
            Ok(content) => violations.extend(lint_forbid_unsafe(&rel(&root, path), &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 2: FNV-only maps on the hot path.
    for hot in HOT_PATH_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_default_hasher(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 3: no unwrap/expect in library code. Binaries (`src/bin/`,
    // `main.rs`), test/bench trees, the crates.io stand-ins and xtask
    // itself (whose lint tables spell the banned tokens) are out of scope.
    let mut lib_sources: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut lib_sources);
    for c in OWN_CRATES {
        if *c == "xtask" {
            continue;
        }
        collect_rs(&root.join(format!("crates/{c}/src")), &mut lib_sources);
    }
    for path in &lib_sources {
        let p = rel(&root, path);
        if p.contains("/bin/") || p.ends_with("main.rs") {
            continue;
        }
        match std::fs::read_to_string(path) {
            Ok(content) => violations.extend(lint_unwrap(&p, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 4: no tracked build artifacts.
    match std::process::Command::new("git")
        .arg("-C")
        .arg(&root)
        .args(["ls-files", "-z"])
        .output()
    {
        Ok(out) if out.status.success() => {
            let listing = String::from_utf8_lossy(&out.stdout);
            violations.extend(lint_tracked_target(
                listing.split('\0').filter(|s| !s.is_empty()),
            ));
        }
        Ok(out) => {
            eprintln!("xtask: git ls-files failed: {}", out.status);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("xtask: cannot run git: {e}");
            return ExitCode::from(2);
        }
    }

    // Rule 5: worklist loops on the budget hot path must check in with
    // the governor (or carry an audit marker).
    for hot in BUDGET_HOT_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_budget_checkpoints(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 6: no raw wall-clock reads on the evaluation hot path — phase
    // timing goes through the tracer (or carries an audit marker).
    for hot in CLOCK_HOT_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_raw_clock(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 7: no per-element map probes inside the bit-parallel kernel —
    // state lives in dense word-indexed arrays (or carries an audit marker).
    for hot in BITPARALLEL_HOT_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_scalar_probe(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 8: the streaming enumerator must not buffer answers — no
    // `.collect::<Vec` / `.push(` there (or carries an audit marker).
    for hot in ENUMERATOR_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_materialize(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 9: every rewrite-application site in the optimizer and the
    // regime minimizer must be dominated by a containment-verification
    // call in the same function (or carries an audit marker).
    for hot in REWRITE_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_unverified_rewrite(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 10: the query service must not parse or compile outside the
    // audited cold path — a cache hit repeats none of that work.
    for hot in SERVER_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_cold_path(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // Rule 11: experiment bins go through the declarative harness — no
    // per-experiment env knobs, no ad-hoc result writes (or an audit
    // marker).
    for hot in EXPERIMENT_BIN_FILES {
        let path = root.join(hot);
        match std::fs::read_to_string(&path) {
            Ok(content) => violations.extend(lint_harness_bypass(hot, &content)),
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} entry points, {} hot files, {} budget-hot files, \
             {} clock-hot files, {} kernel files, {} enumerator files, {} rewrite files, \
             {} server files, {} experiment-bin files, {} library files)",
            entries.len(),
            HOT_PATH_FILES.len(),
            BUDGET_HOT_FILES.len(),
            CLOCK_HOT_FILES.len(),
            BITPARALLEL_HOT_FILES.len(),
            ENUMERATOR_FILES.len(),
            REWRITE_FILES.len(),
            SERVER_FILES.len(),
            EXPERIMENT_BIN_FILES.len(),
            lib_sources.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: this file is compiled at a fixed depth below it.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").to_string());
    PathBuf::from(manifest)
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut batch: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            batch.push(path);
        }
    }
    batch.sort();
    out.extend(batch);
}
