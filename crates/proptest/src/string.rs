//! String-pattern strategies: a `&str` literal acts as a strategy whose
//! values are strings matching a small regex-like subset — character
//! classes `[a-z0-9_]`, the proptest classes `\PC` (any non-control
//! character) and `\pC` (control characters), `.`, literal characters,
//! and the quantifiers `{m,n}`, `{n}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform `char` in `[lo, hi)`, skipping the surrogate gap.
pub fn char_in(rng: &mut TestRng, lo: char, hi: char) -> char {
    let (lo, hi) = (lo as u32, hi as u32);
    assert!(lo < hi, "empty char range");
    for _ in 0..64 {
        let v = lo + rng.below_u128(u128::from(hi - lo)) as u32;
        if let Some(c) = char::from_u32(v) {
            return c;
        }
    }
    char::from_u32(lo).expect("range start is a valid char")
}

/// One parsed pattern element: a set of candidate ranges plus repetition.
struct Piece {
    /// Inclusive scalar-value ranges to draw from.
    ranges: Vec<(u32, u32)>,
    min: usize,
    max: usize,
}

/// Ranges for `\PC`: printable characters across several scripts (ASCII
/// kept most likely so generated strings stress the common paths too).
const NON_CONTROL: &[(u32, u32)] = &[
    (0x20, 0x7e),
    (0x20, 0x7e),
    (0x20, 0x7e),
    (0xa1, 0x24f),
    (0x391, 0x3c9),
    (0x410, 0x44f),
    (0x4e00, 0x4e5f),
    (0x1f600, 0x1f64f),
];

const CONTROL: &[(u32, u32)] = &[(0x00, 0x1f), (0x7f, 0x7f)];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let ranges: Vec<(u32, u32)> = match chars[i] {
            '[' => {
                let mut members = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        members.push((lo as u32, chars[i + 2] as u32));
                        i += 3;
                    } else {
                        members.push((lo as u32, lo as u32));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // ']'
                members
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                match c {
                    'P' | 'p' => {
                        let class = chars[i];
                        i += 1;
                        match (c, class) {
                            ('P', 'C') => NON_CONTROL.to_vec(),
                            ('p', 'C') => CONTROL.to_vec(),
                            other => {
                                panic!("unsupported class \\{}{} in {pattern}", other.0, other.1)
                            }
                        }
                    }
                    'd' => vec![('0' as u32, '9' as u32)],
                    'w' => vec![
                        ('a' as u32, 'z' as u32),
                        ('A' as u32, 'Z' as u32),
                        ('0' as u32, '9' as u32),
                        ('_' as u32, '_' as u32),
                    ],
                    lit => vec![(lit as u32, lit as u32)],
                }
            }
            '.' => {
                i += 1;
                NON_CONTROL.to_vec()
            }
            lit => {
                i += 1;
                vec![(lit as u32, lit as u32)]
            }
        };
        // optional quantifier
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier min"),
                            hi.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { ranges, min, max });
    }
    pieces
}

fn generate_from(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for p in pieces {
        let count = p.min + rng.below(p.max - p.min + 1);
        for _ in 0..count {
            let (lo, hi) = p.ranges[rng.below(p.ranges.len())];
            out.push(char_in(rng, char::from_u32(lo).unwrap(), {
                // char_in is exclusive at the top; +1 may land in the
                // surrogate gap, which char_in already skips
                char::from_u32(hi + 1).unwrap_or('\u{e000}')
            }));
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // parse anew per call: patterns are short and tests are not
        // throughput-critical
        generate_from(&parse(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ascii_class_with_counts() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn non_control_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::from_seed(3);
        let s = Strategy::generate(&"ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() == 4 || s.len() == 5);
    }
}
