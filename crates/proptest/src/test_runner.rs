//! The deterministic test RNG and case-failure error type.

use std::fmt;

/// Error carried out of a failing property-test case (`prop_assert!`
/// returns one instead of panicking, so `?` composes inside test bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any displayable reason (usable directly as
    /// `.map_err(TestCaseError::fail)?`).
    pub fn fail<M: fmt::Display>(reason: M) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG; each test derives its stream from the
/// test's name so runs are reproducible without a persisted seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// The effective base seed for a named test: FNV-1a over the test name,
/// XOR-mixed with a bit-diffused `ECRPQ_TEST_SEED` when that environment
/// variable is set. With the variable unset the seed depends only on the
/// name, so default runs are stable across machines and sessions; setting
/// it perturbs every property test's stream at once for exploratory
/// fuzzing. Failure messages print the effective seed.
pub fn seed_for_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(s) = std::env::var("ECRPQ_TEST_SEED") {
        let base: u64 = s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("ECRPQ_TEST_SEED must be a decimal u64, got {s:?}"));
        // diffuse the base (splitmix64 finalizer) so small seeds flip
        // high bits too, then mix
        let mut z = base.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= z ^ (z >> 31);
    }
    h
}

impl TestRng {
    /// Seeds from a test name via [`seed_for_name`] (honours
    /// `ECRPQ_TEST_SEED`).
    pub fn from_name(name: &str) -> Self {
        TestRng {
            state: seed_for_name(name),
        }
    }

    /// Seeds directly from a `u64`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `0..n` for wide spans (`n > 0`).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}
