//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this workspace-local
//! crate implements the subset of proptest the test suite uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_recursive`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! [`Just`], string-pattern strategies (a small regex-like subset), and
//! the `prop_assert*` macros. Failing inputs are reported but not shrunk —
//! the deterministic per-test RNG makes every failure reproducible.

#![warn(missing_docs)]

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from `element`, with length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for_name(stringify!($name));
                let mut rng = $crate::TestRng::from_seed(seed);
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{} (effective seed {:#018x}; \
                             reproduce or vary with ECRPQ_TEST_SEED): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message (mirrors proptest's semantics of
/// returning a [`TestCaseError`] rather than panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Picks one of the given strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
