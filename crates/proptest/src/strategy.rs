//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// depth `d` and returns the strategy for depth `d + 1`; `depth`
    /// levels are stacked on top of `self` (the leaf). The `desired_size`
    /// and `expected_branch_size` hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Keeps only values satisfying `pred` (retrying; gives up after a
    /// bounded number of attempts and panics, since there is no global
    /// rejection accounting).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy behind an `Arc`, making it cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies (the [`crate::prop_oneof!`] backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty list of type-erased strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $below:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + rng.below_u128(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                (start as u128 + rng.below_u128(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        crate::string::char_in(rng, self.start, self.end)
    }
}
