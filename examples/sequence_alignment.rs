//! Approximate sequence matching in a variant graph — the bioinformatics
//! scenario the paper cites for path-label comparison ([3] in §1).
//!
//! A *variant graph* encodes a reference DNA sequence plus known variants
//! as alternative branches. An ECRPQ with the synchronous relation
//! “edit distance ≤ d” (Example 2.1 mentions “edit-distance at most 14”)
//! finds pairs of walks spelling nearly-identical sequences.
//!
//! ```sh
//! cargo run --example sequence_alignment
//! ```

use ecrpq::automata::relations;
use ecrpq::eval::product::answers_product;
use ecrpq::eval::PreparedQuery;
use ecrpq::graph::GraphDb;
use ecrpq::query::Ecrpq;
use std::sync::Arc;

fn main() {
    // Three haplotypes of the same locus, as parallel branches spelling
    //   ref: gattt    sub: gatct (t→c substitution)    ins: gacttt
    // (one 'c' inserted into the reference).
    let mut db = GraphDb::new();
    let s = db.add_node("s");
    let e = db.add_node("e");
    let spell = |db: &mut GraphDb, prefix: &str, word: &str, s: u32, e: u32| {
        let mut cur = s;
        let chars: Vec<char> = word.chars().collect();
        for (i, &c) in chars.iter().enumerate() {
            let next = if i + 1 == chars.len() {
                e
            } else {
                db.add_node(&format!("{prefix}{i}"))
            };
            db.add_edge(cur, c, next);
            cur = next;
        }
    };
    spell(&mut db, "r", "gattt", s, e);
    spell(&mut db, "a", "gatct", s, e);
    spell(&mut db, "i", "gacttt", s, e);
    println!("{db}");

    let num_symbols = db.alphabet().len();

    // q(x, y): two walks x→y whose spelled sequences are within edit
    // distance 1 — reference vs substitution qualifies, reference vs
    // insertion qualifies, but not every pair does.
    let mut q = Ecrpq::new(db.alphabet().clone());
    let x = q.node_var("x");
    let y = q.node_var("y");
    let p1 = q.path_atom(x, "w1", y);
    let p2 = q.path_atom(x, "w2", y);
    q.rel_atom(
        "edit<=1",
        Arc::new(relations::edit_distance_le(1, num_symbols)),
        &[p1, p2],
    );
    q.set_free(&[x, y]);
    println!("query: {q}");

    let prepared = PreparedQuery::build(&q).unwrap();
    let answers = answers_product(&db, &prepared);
    println!(
        "{} (start,end) pairs admit 1-edit-close walk pairs",
        answers.len()
    );
    assert!(answers.contains(&vec![s, e]));

    // Check which full haplotype pairs are 1-edit-close, via the witness
    // relation directly:
    let ed1 = relations::edit_distance_le(1, num_symbols);
    let reference = db.alphabet().encode("gattt").unwrap();
    let substitution = db.alphabet().encode("gatct").unwrap();
    let insertion = db.alphabet().encode("gacttt").unwrap();
    println!(
        "ref↔sub within 1 edit: {}",
        ed1.contains(&[&reference, &substitution])
    );
    println!(
        "ref↔ins within 1 edit: {}",
        ed1.contains(&[&reference, &insertion])
    );
    println!(
        "sub↔ins within 1 edit: {}",
        ed1.contains(&[&substitution, &insertion])
    );
    assert!(ed1.contains(&[&reference, &substitution]));
    assert!(ed1.contains(&[&reference, &insertion]));
    assert!(!ed1.contains(&[&substitution, &insertion])); // needs 2 edits
}
