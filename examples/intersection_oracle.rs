//! The PSPACE-hardness gadget of Lemma 5.1, end to end.
//!
//! Takes regular languages, embeds their intersection-non-emptiness
//! problem into an ECRPQ + graph database via the marker construction,
//! evaluates the query, and — when satisfiable — extracts a witness tuple
//! whose shared middle segment *is* a word in the intersection.
//!
//! ```sh
//! cargo run --example intersection_oracle
//! ```

use ecrpq::automata::{Alphabet, Regex};
use ecrpq::eval::product::witness_product;
use ecrpq::eval::PreparedQuery;
use ecrpq::reductions::{ine_to_ecrpq_big_component, intersection_witness};
use ecrpq::structure::TwoLevelGraph;

fn main() {
    let mut alphabet = Alphabet::ascii_lower(2);
    let sources = ["a*b", "(a|b)*b", "a(a|b)*"];
    println!("languages: {}", sources.join(", "));
    let langs: Vec<_> = sources
        .iter()
        .map(|r| Regex::compile_str(r, &mut alphabet).unwrap())
        .collect();

    // Ground truth from the direct oracle.
    let oracle = intersection_witness(&langs);
    println!(
        "oracle: intersection {}",
        match &oracle {
            Some(w) => format!("non-empty, witness {:?}", alphabet.decode(w)),
            None => "empty".to_string(),
        }
    );

    // A 2L graph with a 3-vertex relation component (the reduction's
    // “big component”): three parallel path variables chained by two
    // hyperedges.
    let mut g = TwoLevelGraph::new(2);
    let e0 = g.add_edge(0, 1);
    let e1 = g.add_edge(0, 1);
    let e2 = g.add_edge(0, 1);
    g.add_hyperedge(&[e0, e1]);
    g.add_hyperedge(&[e1, e2]);
    println!(
        "2L graph: cc_vertex={}, cc_hedge={}",
        g.cc_vertex(),
        g.cc_hedge()
    );

    let (q, db) = ine_to_ecrpq_big_component(&langs, &alphabet, &g).expect("reduction applies");
    println!(
        "reduced to: query with {} path vars over a {}-node marker database",
        q.num_path_vars(),
        db.num_nodes()
    );

    let prepared = PreparedQuery::build(&q).unwrap();
    match witness_product(&db, &prepared) {
        Some(w) => {
            println!("query satisfiable — witness paths:");
            let mut common: Option<String> = None;
            for (p, path) in &w.paths {
                let label = db.alphabet().decode(&path.label());
                println!("  {} reads {label:?}", q.path_name(*p));
                // marker words look like $u#…#$ — extract u
                if let Some(stripped) = label
                    .strip_prefix('$')
                    .and_then(|s| s.split('#').next())
                    .map(|s| s.trim_end_matches('$').to_string())
                {
                    common.get_or_insert(stripped);
                }
            }
            let u = common.expect("marker-shaped witness");
            println!("shared middle segment: {u:?} — a word in the intersection");
            for (src, lang) in sources.iter().zip(&langs) {
                let encoded = db.alphabet().encode(&u).unwrap();
                assert!(lang.accepts(&encoded), "{u} should match {src}");
            }
            assert!(oracle.is_some());
        }
        None => {
            println!("query unsatisfiable — intersection is empty");
            assert!(oracle.is_none());
        }
    }
}
