//! A small command-line front end: evaluate a query file against a graph
//! file.
//!
//! ```sh
//! cargo run --example ecrpq_cli -- <graph-file> <query-file>
//! cargo run --example ecrpq_cli            # runs a built-in demo
//! ```
//!
//! The graph file uses the `src -a-> dst` edge-list format; the query file
//! contains one (U)ECRPQ — disjuncts separated by `UNION`. Output: the
//! structural measures, the Theorem 3.1/3.2 regimes, the chosen strategy,
//! and the answers.

use ecrpq::eval::planner;
use ecrpq::graph::parse_graph;
use ecrpq::query::{parse_union, RelationRegistry};
use std::process::ExitCode;

const DEMO_GRAPH: &str = "\
u -a-> v
v -a-> w
u -b-> w
w -a-> u
";

const DEMO_QUERY: &str = "\
q(x, y) :- x -[p1]-> y, x -[p2]-> y, eq_len(p1, p2), p1 in a+, p2 in b+
UNION
q(x, y) :- x -(aa)-> y
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (graph_src, query_src) = match args.as_slice() {
        [] => (DEMO_GRAPH.to_string(), DEMO_QUERY.to_string()),
        [g, q] => {
            let graph = match std::fs::read_to_string(g) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read graph file {g}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let query = match std::fs::read_to_string(q) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read query file {q}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (graph, query)
        }
        _ => {
            eprintln!("usage: ecrpq_cli [<graph-file> <query-file>]");
            return ExitCode::FAILURE;
        }
    };

    let db = match parse_graph(&graph_src) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "graph: {} nodes, {} edges, alphabet {}",
        db.num_nodes(),
        db.num_edges(),
        db.alphabet()
    );
    let mut alphabet = db.alphabet().clone();
    let union = match parse_union(&query_src, &mut alphabet, &RelationRegistry::new()) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // if the query introduced new symbols, they exist in `alphabet` but
    // not in the database — re-intern the database over the superset
    let db = db.with_extended_alphabet(&alphabet);

    let m = union.measures();
    println!(
        "union of {} disjunct(s); measures: cc_vertex={}, cc_hedge={}, tw={}",
        union.len(),
        m.cc_vertex,
        m.cc_hedge,
        m.treewidth
    );
    for (i, q) in union.disjuncts().iter().enumerate() {
        let plan = planner::plan(&db, q);
        println!(
            "  disjunct {i}: {q}\n    regimes: {} / {}; strategy {:?}",
            plan.combined, plan.param, plan.strategy
        );
    }
    if union.arity() == 0 {
        let sat = planner::evaluate_union(&db, &union);
        println!("Boolean answer: {sat}");
    } else {
        let answers = planner::answers_union(&db, &union);
        println!("{} answer(s):", answers.len());
        for t in &answers {
            let names: Vec<&str> = t.iter().map(|&v| db.node_name(v)).collect();
            println!("  ({})", names.join(", "));
        }
    }
    ExitCode::SUCCESS
}
