//! Data-provenance auditing: tracking how records propagate through a
//! pipeline of `c`opy, `t`ransform and `m`erge steps — an instance of the
//! inter-path comparisons that motivate ECRPQ over CRPQ (§1 of the paper).
//!
//! Shows three layers of the API on one scenario:
//! 1. a UECRPQ asking for *suspicious duplicates*: two derivation chains
//!    from the same source to the same artifact that are either
//!    step-for-step identical (redundant pipeline) or differ in exactly
//!    one step (a fork that was supposed to be identical);
//! 2. counting how many node assignments witness it (#ECRPQ);
//! 3. abstract satisfiability of the audit query, with its canonical
//!    witness database.
//!
//! ```sh
//! cargo run --example provenance
//! ```

use ecrpq::eval::product::answers_with_witnesses;
use ecrpq::eval::{count_ecrpq_assignments, planner, satisfiable, PreparedQuery};
use ecrpq::graph::parse_graph;
use ecrpq::query::{parse_union, NodeVar, RelationRegistry};

fn main() {
    // artifacts: src → staged → report, with two parallel branches
    let db = parse_graph(
        "src    -c-> stage1
         stage1 -t-> norm1
         norm1  -m-> report
         src    -c-> stage2
         stage2 -t-> norm2
         norm2  -m-> report
         src    -t-> quick
         quick  -m-> report
        ",
    )
    .expect("valid pipeline graph");
    println!(
        "pipeline: {} artifacts, {} derivation steps",
        db.num_nodes(),
        db.num_edges()
    );

    // Disjunct 1: identical derivations (eq); disjunct 2: exactly one step
    // differs (hamming ≤ 1 but not 0 is approximated by hamming<=1 — the
    // identical case is subsumed, which is fine for an audit).
    let mut alphabet = db.alphabet().clone();
    let union = parse_union(
        "q(x, y) :- x -[d1]-> y, x -[d2]-> y, eq(d1, d2), d1 in (c|t|m)(c|t|m)+ \
         UNION \
         q(x, y) :- x -[d1]-> y, x -[d2]-> y, hamming<=1(d1, d2), d1 in (c|t|m)(c|t|m)+",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .expect("valid audit query");
    let db = db.with_extended_alphabet(&alphabet);
    let m = union.measures();
    println!(
        "audit query: {} disjuncts, measures cc_vertex={} cc_hedge={} tw={}",
        union.len(),
        m.cc_vertex,
        m.cc_hedge,
        m.treewidth
    );

    let answers = planner::answers_union(&db, &union);
    println!("suspicious (source, artifact) pairs:");
    for t in &answers {
        println!("  {} ⇒ {}", db.node_name(t[0]), db.node_name(t[1]));
    }
    let src = db.node("src").unwrap();
    let report = db.node("report").unwrap();
    // the two 'c t m' branches are step-for-step identical
    assert!(answers.contains(&vec![src, report]));

    // Count witnesses of the identical-derivation disjunct, with all node
    // variables free (the number of satisfying assignments).
    let mut q0 = union.disjuncts()[0].clone();
    let all: Vec<NodeVar> = (0..q0.num_node_vars() as u32).map(NodeVar).collect();
    q0.set_free(&all);
    let prepared = PreparedQuery::build(&q0).unwrap();
    let count = count_ecrpq_assignments(&db, &prepared);
    println!("identical-derivation assignments: {count}");

    // Pull one concrete witness per answer pair.
    let prepared_b = PreparedQuery::build(&union.disjuncts()[0]).unwrap();
    let per_answer = answers_with_witnesses(&db, &prepared_b);
    if let Some((_, w)) = per_answer.first() {
        println!("example duplicate derivation:");
        for (p, path) in &w.paths {
            println!(
                "  {}: {} steps reading {:?}",
                q0.path_name(*p),
                path.len(),
                db.alphabet().decode(&path.label())
            );
        }
    }

    // Abstract satisfiability: is the audit query satisfiable at all?
    let witness_db = satisfiable(union.disjuncts().first().unwrap())
        .expect("valid query")
        .expect("the audit pattern is satisfiable");
    println!(
        "satisfiability witness database: {} nodes, {} edges (canonical bouquet)",
        witness_db.num_nodes(),
        witness_db.num_edges()
    );
}
