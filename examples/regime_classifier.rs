//! Classify queries into the complexity regimes of Theorems 3.1 and 3.2.
//!
//! Feeds a portfolio of queries through the structural analysis — the 2L
//! abstraction, its `cc_vertex`/`cc_hedge` measures, and the treewidth of
//! `G^node` — and reports, for the *class* each query represents, the
//! combined and parameterized complexity the paper proves.
//!
//! ```sh
//! cargo run --example regime_classifier
//! ```

use ecrpq::eval::planner::{combined_regime, param_regime, ClassBounds};
use ecrpq::query::{parse_query, Ecrpq, RelationRegistry};
use ecrpq::workloads::{big_component_query, clique_query, tractable_chain_query};
use ecrpq_automata::Alphabet;

fn report(name: &str, q: &Ecrpq, growing: &str) {
    let m = q.measures();
    println!("\n### {name}");
    println!("  {q}");
    println!(
        "  measures: cc_vertex={}, cc_hedge={}, tw={}   (unbounded in the family: {growing})",
        m.cc_vertex, m.cc_hedge, m.treewidth
    );
    // The family's class bounds: the growing measure is unbounded.
    let bounds = ClassBounds {
        cc_vertex: (!growing.contains("cc_vertex")).then_some(m.cc_vertex),
        cc_hedge: (!growing.contains("cc_hedge")).then_some(m.cc_hedge),
        treewidth: (!growing.contains("tw")).then_some(m.treewidth),
    };
    println!(
        "  ⇒ eval-ECRPQ(C): {}   |   p-eval-ECRPQ(C): {}",
        combined_regime(&bounds),
        param_regime(&bounds)
    );
}

fn main() {
    println!("# ECRPQ regime classifier (Theorems 3.1 & 3.2)");

    // Family 1: chains of eq-length diamonds — everything bounded.
    let q1 = tractable_chain_query(3, 2);
    report(
        "chain of eq-length diamonds (len grows)",
        &q1,
        "none — all three measures stay bounded",
    );

    // Family 2: clique CRPQ patterns — treewidth grows.
    let mut alphabet = Alphabet::ascii_lower(2);
    let q2 = clique_query(4, "(a|b)*", &mut alphabet);
    report("k-clique CRPQ pattern (k grows)", &q2, "tw");

    // Family 3: one growing relation component.
    let q3 = big_component_query(4, 2);
    report("r parallel equal-length paths (r grows)", &q3, "cc_vertex");

    // Family 4: growing number of binary atoms on two path variables —
    // cc_hedge grows while cc_vertex stays 2.
    let mut alphabet = Alphabet::ascii_lower(2);
    let q4 = parse_query(
        "x -[p]-> y, x -[r]-> y, eq_len(p, r), prefix(p, r), hamming<=1(p, r)",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    report(
        "two paths under a growing stack of binary relations (#atoms grows)",
        &q4,
        "cc_hedge",
    );

    println!("\nSummary: the combined complexity is PSPACE-complete as soon as");
    println!("either component measure is unbounded, NP for bounded components");
    println!("with unbounded treewidth, and PTIME when all three are bounded;");
    println!("the parameterized versions are XNL / W[1] / FPT respectively,");
    println!("with cc_hedge irrelevant to the parameterized classification.");
}
