//! Route comparison over a transport network — the paper's motivating
//! use-case for *inter-path* dependencies (§1): CRPQs cannot relate the
//! labels of two paths, ECRPQs can.
//!
//! The network mixes flight (`f`), train (`t`) and bus (`b`) legs. We ask:
//!
//! 1. which city pairs admit a *train-only* itinerary with exactly as many
//!    legs as some flight itinerary (fair comparison of connections);
//! 2. which cities admit two itineraries to the same destination where one
//!    leg sequence is a prefix of the other (a “shortcut” certificate).
//!
//! ```sh
//! cargo run --example flight_routes
//! ```

use ecrpq::eval::planner;
use ecrpq::graph::parse_graph;
use ecrpq::query::{parse_query, RelationRegistry};

fn main() {
    let db = parse_graph(
        "# flights
         paris  -f-> berlin
         berlin -f-> warsaw
         paris  -f-> rome
         rome   -f-> athens
         paris  -f-> frankfurt
         frankfurt -f-> berlin
         # trains
         paris  -t-> lyon
         lyon   -t-> milan
         milan  -t-> rome
         paris  -t-> brussels
         brussels -t-> berlin
         # buses
         milan  -b-> rome
         berlin -b-> warsaw
        ",
    )
    .expect("valid graph");
    println!(
        "network: {} cities, {} legs",
        db.num_nodes(),
        db.num_edges()
    );

    // Query 1: same number of legs, train-only vs flight-only, same
    // destination. `eq_len` is the synchronous relation of Example 2.1.
    let mut alphabet = db.alphabet().clone();
    let q1 = parse_query(
        "q(x, y) :- x -[train]-> y, x -[fly]-> y, eq_len(train, fly), train in t+, fly in f+",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .expect("valid query");
    println!("\nQ1 (train matches flight leg-for-leg): {q1}");
    let plan = planner::plan(&db, &q1);
    println!(
        "  measures: cc_vertex={} cc_hedge={} tw={} → {} / {}",
        plan.measures.cc_vertex,
        plan.measures.cc_hedge,
        plan.measures.treewidth,
        plan.combined,
        plan.param
    );
    let answers1 = planner::answers(&db, &q1);
    for t in &answers1 {
        println!(
            "  {} ⇒ {} (equal-leg train and flight itineraries)",
            db.node_name(t[0]),
            db.node_name(t[1])
        );
    }
    // paris reaches berlin by train (paris-brussels-berlin) and by flight
    // (paris-frankfurt-berlin), both in two legs:
    let paris = db.node("paris").unwrap();
    let berlin = db.node("berlin").unwrap();
    assert!(answers1.contains(&vec![paris, berlin]));

    // Query 2: prefix-related itineraries to the same destination: one
    // route extends the other leg-for-leg with the same modes.
    let mut alphabet = db.alphabet().clone();
    let q2 = parse_query(
        "q(x, z) :- x -[short]-> y, x -[long]-> z, y -[rest]-> z, prefix(short, long)",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .expect("valid query");
    println!("\nQ2 (itinerary with a strict continuation): {q2}");
    let answers = planner::answers(&db, &q2);
    println!("  {} city pairs admit prefix-related routes", answers.len());
    // paris -t-> lyon is a prefix of paris -t-> lyon -t-> milan
    let paris = db.node("paris").unwrap();
    let milan = db.node("milan").unwrap();
    assert!(answers.contains(&vec![paris, milan]));
    println!("  e.g. paris ⇒ milan: 'paris-t->lyon' extends to 'paris-t->lyon-t->milan'");
}
