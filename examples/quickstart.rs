//! Quickstart: build a graph database, write an ECRPQ, evaluate it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Reproduces Example 2.1 of the paper: find pairs of vertices with
//! equal-length outgoing paths meeting in a common vertex.

use ecrpq::eval::planner;
use ecrpq::eval::product::witness_product;
use ecrpq::eval::PreparedQuery;
use ecrpq::graph::parse_graph;
use ecrpq::query::{parse_query, RelationRegistry};

fn main() {
    // A small road network: two routes of length 2 and one of length 1
    // converge on `hub`.
    let db = parse_graph(
        "a1 -a-> m1\n\
         m1 -a-> hub\n\
         b1 -b-> m2\n\
         m2 -b-> hub\n\
         c1 -a-> hub\n",
    )
    .expect("valid graph");
    println!("{db}");

    // Example 2.1: q(x, x') = ∃y  x →π1 y ∧ x' →π2 y ∧ eq-len(π1, π2)
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x, x') :- x -[p1]-> y, x' -[p2]-> y, eq_len(p1, p2)",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .expect("valid query");
    println!("query: {q}");

    // Structural measures drive the complexity (Theorems 3.1/3.2).
    let m = q.measures();
    println!(
        "measures: cc_vertex={}, cc_hedge={}, treewidth={}",
        m.cc_vertex, m.cc_hedge, m.treewidth
    );
    let plan = planner::plan(&db, &q);
    println!(
        "class regime: combined={}, parameterized={}; strategy: {:?}",
        plan.combined, plan.param, plan.strategy
    );

    // All answers.
    let answers = planner::answers(&db, &q);
    println!("answers ({}):", answers.len());
    for t in &answers {
        let names: Vec<&str> = t.iter().map(|&v| db.node_name(v)).collect();
        println!("  ({})", names.join(", "));
    }
    // a1 and b1 both reach hub in two steps:
    let a1 = db.node("a1").unwrap();
    let b1 = db.node("b1").unwrap();
    assert!(answers.contains(&vec![a1, b1]));

    // A concrete witness for the Boolean version.
    let mut boolean = q.clone();
    boolean.set_free(&[]);
    let prepared = PreparedQuery::build(&boolean).unwrap();
    let w = witness_product(&db, &prepared).expect("satisfiable");
    println!("witness paths:");
    for (p, path) in &w.paths {
        println!(
            "  {} : {} -> {} (label {:?}, length {})",
            boolean.path_name(*p),
            db.node_name(path.source()),
            db.node_name(path.target()),
            db.alphabet().decode(&path.label()),
            path.len()
        );
    }
}
