#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline against the workspace's own dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "All checks passed."
