#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline against the workspace's own dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== differential suites (evaluator equivalence, layout + parallel + budget + oracle) =="
cargo test -q --offline --test differential --test parallel_differential --test layout_differential \
  --test budget_differential --test oracle_differential --test metrics_invariants \
  --test trace_observability --test minimize_differential --test server_differential

echo "== xtask lint (repo policy) =="
cargo run -q -p xtask --offline -- lint

echo "== E19 smoke (bit-parallel vs flat at a small size) =="
# a 20k-node instance exercises the full E19 path — generator, both
# layouts, the layout-equality assertions — in a couple of seconds; the
# committed BENCH_bitparallel.json is produced by the full-size run
ECRPQ_E19_NODES=20000 ECRPQ_E19_OUT=target/e19_smoke.json \
  cargo run -q --release --offline -p ecrpq-bench --bin experiments -- E19 > /dev/null
# schema drift gate: the smoke output must carry exactly the key set of
# the committed benchmark file (field names may carry digits and capitals
# — "p99_ms", "speedup_t8" — so the key regex must not stop at [a-z_])
diff <(grep -o '"[A-Za-z0-9_]*":' target/e19_smoke.json | sort -u) \
     <(grep -o '"[A-Za-z0-9_]*":' BENCH_bitparallel.json | sort -u) \
  || { echo "E19 JSON schema drifted from BENCH_bitparallel.json"; exit 1; }

echo "== E20 smoke (yannakakis vs flat on the planted acyclic instance) =="
# 8000 nodes is the smallest round size past the planner's nv^2 tuple
# budget (~7071 nodes), so the in-bench Strategy::Yannakakis assertion
# still fires; the committed BENCH_yannakakis.json is the full-size run
ECRPQ_E20_NODES=8000 ECRPQ_E20_OUT=target/e20_smoke.json \
  cargo run -q --release --offline -p ecrpq-bench --bin experiments -- E20 > /dev/null
diff <(grep -o '"[A-Za-z0-9_]*":' target/e20_smoke.json | sort -u) \
     <(grep -o '"[A-Za-z0-9_]*":' BENCH_yannakakis.json | sort -u) \
  || { echo "E20 JSON schema drifted from BENCH_yannakakis.json"; exit 1; }

echo "== E21 smoke (regime minimizer on the planted NP-to-PTIME instance) =="
# 48 nodes keeps the NP-regime baseline evaluation to a fraction of a
# second while still exercising all three chord elisions and the in-bench
# answer-set assertions; the committed BENCH_minimize.json is the
# full-size (96-node) run
ECRPQ_E21_NODES=48 ECRPQ_E21_OUT=target/e21_smoke.json \
  cargo run -q --release --offline -p ecrpq-bench --bin experiments -- E21 > /dev/null
diff <(grep -o '"[A-Za-z0-9_]*":' target/e21_smoke.json | sort -u) \
     <(grep -o '"[A-Za-z0-9_]*":' BENCH_minimize.json | sort -u) \
  || { echo "E21 JSON schema drifted from BENCH_minimize.json"; exit 1; }

echo "== E22 smoke (query service: cached vs cold under concurrent load) =="
# 30 nodes keeps the closed-loop run to a couple of seconds while still
# exercising the full service path — plan cache, session workers, the
# per-request answers-vs-planner assertions, and the cached >= 2x cold
# throughput assertion; the committed BENCH_server.json is the full-size
# (60-node) run
ECRPQ_E22_NODES=30 ECRPQ_E22_OUT=target/e22_smoke.json \
  cargo run -q --release --offline -p ecrpq-bench --bin experiments -- E22 > /dev/null
diff <(grep -o '"[A-Za-z0-9_]*":' target/e22_smoke.json | sort -u) \
     <(grep -o '"[A-Za-z0-9_]*":' BENCH_server.json | sort -u) \
  || { echo "E22 JSON schema drifted from BENCH_server.json"; exit 1; }

echo "== analyze --fix idempotence (on corpus copies, never in place) =="
# pass 1 over pristine copies may apply fixes; pass 2 must apply zero and
# leave every file byte-identical — the --fix contract the W006
# suggestions promise
rm -rf target/fix_idempotence target/fix_idempotence_pass1
mkdir -p target/fix_idempotence
cp queries/*.ecrpq target/fix_idempotence/
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- --fix \
  target/fix_idempotence/*.ecrpq > /dev/null
cp -r target/fix_idempotence target/fix_idempotence_pass1
second=$(cargo run -q --release --offline -p ecrpq-bench --bin analyze -- --fix \
  target/fix_idempotence/*.ecrpq)
# contract: --fix prints one "<path>: <n> fix(es) applied" summary line per
# input file. The gate must anchor on those summary lines only — a bare
# `grep -qv` over the whole output would "fail" on any blank or
# informational line that legitimately isn't a summary line.
if echo "$second" | grep ' fix(es) applied' | grep -qv ': 0 fix(es) applied'; then
  echo "analyze --fix is not idempotent:"; echo "$second"; exit 1
fi
diff -r target/fix_idempotence target/fix_idempotence_pass1 \
  || { echo "analyze --fix second pass changed files"; exit 1; }

echo "== analyze CLI over the query corpus + workloads =="
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- queries/*.ecrpq --workloads

echo "== analyze --trace (per-query phase tables) =="
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- queries/*.ecrpq --trace > /dev/null

echo "== cargo doc (deny warnings) =="
# own crates only: the vendored shims (rand/proptest/criterion) mirror
# upstream doc comments and are not held to this repo's doc standard
RUSTDOCFLAGS="-D warnings" cargo doc --offline --quiet --no-deps \
  -p ecrpq -p ecrpq-automata -p ecrpq-graph -p ecrpq-structure -p ecrpq-query \
  -p ecrpq-analyze -p ecrpq-core -p ecrpq-reductions -p ecrpq-workloads -p ecrpq-bench

echo "All checks passed."
