#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline against the workspace's own dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== differential suites (evaluator equivalence, layout + parallel + budget + oracle) =="
cargo test -q --offline --test differential --test parallel_differential --test layout_differential \
  --test budget_differential --test oracle_differential --test metrics_invariants \
  --test trace_observability --test minimize_differential --test server_differential \
  --test harness_roundtrip --test harness_diff

echo "== xtask lint (repo policy) =="
cargo run -q -p xtask --offline -- lint

echo "== experiment harness smoke (E19-E22 via their committed specs) =="
# each spec's [smoke] table shrinks the workload to a seconds-scale size
# while keeping the full trial path — generator, correctness assertions,
# per-trial caching — and the harness diff gates the smoke aggregate's
# key set against the committed full-size trajectory (--keys-only: smoke
# timings are not comparable to full-size timings, the schema is)
harness() { cargo run -q --release --offline -p ecrpq-bench --bin harness -- "$@"; }
for pair in e19:BENCH_bitparallel.json e20:BENCH_yannakakis.json \
            e21:BENCH_minimize.json e22:BENCH_server.json; do
  exp="${pair%%:*}" bench="${pair#*:}"
  harness run "experiments/$exp.toml" --smoke --out "target/${exp}_smoke.json"
  harness diff "target/${exp}_smoke.json" --against "$bench" --keys-only \
    || { echo "$exp smoke schema drifted from $bench"; exit 1; }
done

echo "== harness resume gate (warm rerun must execute zero trials) =="
# the e19 smoke trials above are now cached under their content-addressed
# keys; a warm rerun with --require-warm fails if any trial re-executes
harness run experiments/e19.toml --smoke --out target/e19_smoke.json --require-warm

echo "== harness regression gate (self-diff clean, planted slowdown caught) =="
# the committed trajectory diffed against itself must pass...
harness diff BENCH_bitparallel.json --against BENCH_bitparallel.json --spec experiments/e19.toml
# ...and with every fresh metric degraded 2x it must fail with exit 1
if harness diff BENCH_bitparallel.json --against BENCH_bitparallel.json \
     --spec experiments/e19.toml --planted 2.0 > /dev/null; then
  echo "harness diff did not catch a planted 2x slowdown"; exit 1
fi

echo "== analyze --fix idempotence (on corpus copies, never in place) =="
# pass 1 over pristine copies may apply fixes; pass 2 must apply zero and
# leave every file byte-identical — the --fix contract the W006
# suggestions promise
rm -rf target/fix_idempotence target/fix_idempotence_pass1
mkdir -p target/fix_idempotence
cp queries/*.ecrpq target/fix_idempotence/
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- --fix \
  target/fix_idempotence/*.ecrpq > /dev/null
cp -r target/fix_idempotence target/fix_idempotence_pass1
second=$(cargo run -q --release --offline -p ecrpq-bench --bin analyze -- --fix \
  target/fix_idempotence/*.ecrpq)
# contract: --fix prints one "<path>: <n> fix(es) applied" summary line per
# input file. The gate must anchor on those summary lines only — a bare
# `grep -qv` over the whole output would "fail" on any blank or
# informational line that legitimately isn't a summary line.
if echo "$second" | grep ' fix(es) applied' | grep -qv ': 0 fix(es) applied'; then
  echo "analyze --fix is not idempotent:"; echo "$second"; exit 1
fi
diff -r target/fix_idempotence target/fix_idempotence_pass1 \
  || { echo "analyze --fix second pass changed files"; exit 1; }

echo "== analyze CLI over the query corpus + workloads =="
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- queries/*.ecrpq --workloads

echo "== analyze --trace (per-query phase tables) =="
cargo run -q --release --offline -p ecrpq-bench --bin analyze -- queries/*.ecrpq --trace > /dev/null

echo "== cargo doc (deny warnings) =="
# own crates only: the vendored shims (rand/proptest/criterion) mirror
# upstream doc comments and are not held to this repo's doc standard
RUSTDOCFLAGS="-D warnings" cargo doc --offline --quiet --no-deps \
  -p ecrpq -p ecrpq-automata -p ecrpq-graph -p ecrpq-structure -p ecrpq-query \
  -p ecrpq-analyze -p ecrpq-core -p ecrpq-reductions -p ecrpq-workloads -p ecrpq-bench

echo "All checks passed."
