//! Invariants tying `ProductStats` and the tracer's `Metrics` together.
//!
//! The stats struct and the observability layer count the same events
//! through independent mechanisms (plain field increments vs. per-worker
//! atomic cells folded on collection), so each invariant here is a
//! cross-check of one against the other — or of a stats field against
//! the combinatorics that define it.

use ecrpq::eval::engine;
use ecrpq::eval::{
    answers_product_with_stats_layout, CollectingTracer, EvalOptions, Layout, Phase, PreparedQuery,
    ResourceBudget,
};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{env_seed, random_db, random_ecrpq, RandomQueryParams};

fn small_params() -> RandomQueryParams {
    RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    }
}

/// `domain_kept + domain_pruned` partitions the endpoint domains: the
/// semijoin pass walks some subset of node variables (the constrained
/// ones) over the full vertex set, so the sum is a multiple of `|V|`
/// bounded by `#vars · |V|`.
#[test]
fn domain_counters_partition_the_endpoint_domains() {
    let base = env_seed(0);
    for case in 0..20u64 {
        let seed = base + case;
        let mut q = random_ecrpq(&small_params(), seed + 7000);
        let all: Vec<NodeVar> = (0..q.num_node_vars() as u32).map(NodeVar).collect();
        q.set_free(&all);
        let db = random_db(12, 1.8, 2, seed * 19 + 3);
        let n = db.num_nodes() as u64;
        let prepared = PreparedQuery::build(&q).unwrap();
        let (_, stats) = answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
        let total = stats.domain_kept + stats.domain_pruned;
        assert_eq!(
            total % n,
            0,
            "seed {seed}: kept {} + pruned {} is not a whole number of domains",
            stats.domain_kept,
            stats.domain_pruned
        );
        assert!(
            total <= q.num_node_vars() as u64 * n,
            "seed {seed}: {total} exceeds #vars × |V|"
        );
        // the unpruned layout must report no domain activity
        let (_, raw) = answers_product_with_stats_layout(&db, &prepared, Layout::FlatUnpruned);
        assert_eq!(raw.domain_kept + raw.domain_pruned, 0, "seed {seed}");
    }
}

/// Every queued BFS configuration is eventually expanded on a complete
/// run, so the peak queue length can never exceed the expansion count.
#[test]
fn frontier_peak_bounded_by_configurations() {
    let base = env_seed(0);
    for case in 0..20u64 {
        let seed = base + case;
        let mut q = random_ecrpq(&small_params(), seed + 8000);
        q.set_free(&[NodeVar(0)]);
        let db = random_db(10, 1.8, 2, seed * 29 + 1);
        let prepared = PreparedQuery::build(&q).unwrap();
        for layout in [
            Layout::Legacy,
            Layout::FlatUnpruned,
            Layout::Flat,
            Layout::BitParallel,
        ] {
            let (_, stats) = answers_product_with_stats_layout(&db, &prepared, layout);
            assert!(
                stats.frontier_peak <= stats.configurations,
                "seed {seed}, {layout:?}: frontier {} > configurations {}",
                stats.frontier_peak,
                stats.configurations
            );
        }
    }
}

/// The bit-parallel kernel defines `frontier_peak` as the popcount of the
/// densest BFS level (configurations *inserted* per level), merged across
/// workers by max. On single-file chains every level inserts exactly one
/// configuration, so the peak must be exactly 1 at every thread count — a
/// sum-merge across workers, or counting a whole word instead of its
/// popcount, would exceed 1.
#[test]
fn bitparallel_frontier_peak_is_max_of_level_popcounts() {
    use ecrpq::automata::Alphabet;
    use ecrpq::graph::GraphDb;
    use ecrpq::query::{parse_query, RelationRegistry};
    let mut db = GraphDb::with_alphabet(Alphabet::ascii_lower(2));
    // four disjoint chains a¹⁰b, so parallel workers sweep independent
    // single-file frontiers that must merge by max, not sum
    for _ in 0..4 {
        let first = db.add_nodes_anon(12);
        for i in 0..10u32 {
            db.add_edge(first + i, 'a', first + i + 1);
        }
        db.add_edge(first + 10, 'b', first + 11);
    }
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x) :- x -[p]-> y, p in a*b",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let prepared = PreparedQuery::build(&q).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let opts = EvalOptions::with_threads(threads).with_layout(Layout::BitParallel);
        let (answers, stats) = engine::answers_product_with_stats(&db, &prepared, &opts);
        // nodes 0..=10 of each chain reach the b-edge
        assert_eq!(answers.len(), 44, "{threads} threads");
        assert_eq!(
            stats.frontier_peak, 1,
            "{threads} threads: chain BFS peak must be one inserted config per level"
        );
        assert!(stats.configurations > 10, "{threads} threads");
    }
}

/// An abort is only ever recorded by a checkpoint that tripped, so
/// aborts are bounded by checks — and a complete run aborted nothing.
#[test]
fn budget_aborts_bounded_by_budget_checks() {
    use ecrpq::workloads::big_component_query;
    let base = env_seed(0);
    let mut q = big_component_query(3, 2);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(30, 2.0, 2, base * 7 + 97);
    let prepared = PreparedQuery::build(&q).unwrap();
    for cap in [1u64, 100, 10_000, u64::MAX / 2] {
        let opts = EvalOptions::sequential()
            .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
        let o = engine::answers_product_governed(&db, &prepared, &opts);
        assert!(
            o.stats.budget_aborts <= o.stats.budget_checks,
            "cap {cap}: aborts {} > checks {} (base seed {base})",
            o.stats.budget_aborts,
            o.stats.budget_checks
        );
        if o.termination.is_complete() {
            assert_eq!(o.stats.budget_aborts, 0, "cap {cap}: complete run aborted");
        }
        // (a truncated run need not record an abort here: the trip may be
        // noticed by a site outside the instrumented hot loops, e.g. a
        // semijoin sweep cut short)
    }
}

/// The tracer's per-phase counters must agree with the `ProductStats`
/// fields that count the same events: BFS items are configurations,
/// semijoin prunes are the pruned domain values, the folded frontier
/// peak is the stats frontier peak.
#[test]
fn traced_counters_match_product_stats() {
    let base = env_seed(0);
    for case in 0..10u64 {
        let seed = base + case;
        let mut q = random_ecrpq(&small_params(), seed + 9000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(10, 1.8, 2, seed * 31 + 7);
        let prepared = PreparedQuery::build(&q).unwrap();
        let tracer = CollectingTracer::new();
        let (answers, stats) = engine::answers_product_with_stats_traced(
            &db,
            &prepared,
            &EvalOptions::sequential(),
            &tracer,
        );
        let m = tracer.metrics();
        assert_eq!(
            m.phase(Phase::ProductBfs).items,
            stats.configurations,
            "seed {seed}: BFS items vs configurations"
        );
        assert_eq!(
            m.phase(Phase::Semijoin).pruned,
            stats.domain_pruned,
            "seed {seed}: semijoin prunes vs domain_pruned"
        );
        assert_eq!(
            m.phase(Phase::ProductBfs).frontier_peak,
            stats.frontier_peak,
            "seed {seed}: folded frontier vs stats frontier"
        );
        assert!(
            m.phase(Phase::Odometer).items >= answers.len() as u64,
            "seed {seed}: odometer items below distinct answers"
        );
        assert!(
            m.phase(Phase::Prepare).items > 0,
            "seed {seed}: prepare phase saw no closure rows"
        );
    }
}

/// The same stats/tracer agreement must hold when the counters are
/// produced by several workers and folded: per-worker atomic cells are
/// registered before the threads spawn and summed on collection, so no
/// increment can be dropped at any thread count.
#[test]
fn parallel_fold_loses_no_counts() {
    let base = env_seed(0);
    let mut q = random_ecrpq(&small_params(), base + 9500);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(16, 2.0, 2, base * 11 + 13);
    let prepared = PreparedQuery::build(&q).unwrap();
    let mut expected = None;
    for threads in [1usize, 2, 4, 8] {
        for layout in [Layout::Flat, Layout::BitParallel] {
            let tracer = CollectingTracer::new();
            let (answers, stats) = engine::answers_product_with_stats_traced(
                &db,
                &prepared,
                &EvalOptions::with_threads(threads).with_layout(layout),
                &tracer,
            );
            let m = tracer.metrics();
            assert_eq!(
                m.phase(Phase::ProductBfs).items,
                stats.configurations,
                "{threads} threads, {layout:?}: fold dropped BFS work (base seed {base})"
            );
            assert_eq!(
                m.phase(Phase::ProductBfs).frontier_peak,
                stats.frontier_peak,
                "{threads} threads, {layout:?}: frontier fold"
            );
            // answers are bit-identical at every thread count and layout
            match &expected {
                None => expected = Some(answers),
                Some(e) => assert_eq!(&answers, e, "{threads} threads, {layout:?}"),
            }
        }
    }
}

/// Per-phase governor counters obey the same pairing discipline as the
/// stats: every abort site checks in first, so aborts ≤ checks in every
/// phase — on governed *and* ungoverned runs, truncated or complete.
#[test]
fn per_phase_aborts_bounded_by_checks() {
    use ecrpq::workloads::big_component_query;
    let base = env_seed(0);
    let mut q = big_component_query(3, 2);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(25, 2.0, 2, base * 5 + 41);
    let prepared = PreparedQuery::build(&q).unwrap();
    for cap in [50u64, 5_000, u64::MAX / 2] {
        let opts = EvalOptions::sequential()
            .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
        let tracer = CollectingTracer::new();
        let o = engine::answers_product_governed_traced(&db, &prepared, &opts, &tracer);
        let m = tracer.metrics();
        for phase in Phase::ALL {
            let p = m.phase(phase);
            assert!(
                p.governor_aborts <= p.governor_checks,
                "cap {cap}, phase {}: aborts {} > checks {} (base seed {base})",
                phase.name(),
                p.governor_aborts,
                p.governor_checks
            );
        }
        if o.termination.is_complete() {
            let total_aborts: u64 = Phase::ALL.iter().map(|&p| m.phase(p).governor_aborts).sum();
            assert_eq!(
                total_aborts, 0,
                "cap {cap}: complete run left an abort trace"
            );
        }
    }
}
