//! Integration tests for the static query analyzer.
//!
//! Three layers: golden-file tests pin the rendered diagnostic output
//! (carets, severity ordering) byte-for-byte; the workload corpus is
//! checked for regime agreement between the analyzer and the planner's
//! Theorem 3.1/3.2 transcription; and a differential sweep asserts that
//! the analyzer-gated `planner::answers` stays bit-identical to the
//! direct product search on every workload family.
//!
//! Regenerate goldens after an intentional rendering change with
//! `UPDATE_GOLDEN=1 cargo test --test analyzer`.

use ecrpq::analyze::{analyze, analyze_with, AnalyzerConfig, Code, Severity};
use ecrpq::automata::Alphabet;
use ecrpq::eval::planner::{self, combined_regime, param_regime, ClassBounds};
use ecrpq::eval::product::answers_product;
use ecrpq::eval::PreparedQuery;
use ecrpq::query::{parse_query, Ecrpq, NodeVar, RelationRegistry};
use ecrpq::workloads::{
    big_component_query, clique_query, random_db, random_ecrpq, tractable_chain_query,
    RandomQueryParams,
};
use std::path::PathBuf;

fn parse(src: &str) -> Ecrpq {
    let mut alphabet = Alphabet::new();
    parse_query(src, &mut alphabet, &RelationRegistry::new())
        .unwrap_or_else(|e| panic!("fixture {src:?} must parse: {e}"))
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "rendered diagnostics diverge from {name}; bless with UPDATE_GOLDEN=1 if intended"
    );
}

/// E006 with caret underline into the query text.
#[test]
fn golden_contradictory_unaries() {
    let q = parse("q(x) :- x -[p]-> y, p in a+, p in b+");
    let a = analyze(&q);
    assert!(a.has_errors());
    check_golden("contradictory_unaries.txt", &a.render(q.source()));
}

/// E006 again, but with multi-byte identifiers before the span: columns
/// and caret runs must count characters, not bytes (a byte-based renderer
/// would misalign the underline or panic on the slice arithmetic).
#[test]
fn golden_non_ascii_identifiers() {
    let q = parse("q(χ) :- χ -[π]-> ψ, π in a+, π in b+");
    let a = analyze(&q);
    assert!(a.has_errors());
    let rendered = a.render(q.source());
    // the caret run must start under the final atom, aligned by chars
    let lines: Vec<&str> = rendered.lines().collect();
    let src_line = lines.iter().find(|l| l.starts_with("1 | ")).unwrap();
    let caret_line = lines
        .iter()
        .find(|l| l.contains('^'))
        .unwrap_or_else(|| panic!("no caret line in {rendered}"));
    let caret_at = caret_line.chars().position(|c| c == '^').unwrap();
    let atom_byte = src_line.rfind("π in b+").unwrap();
    let atom_at = src_line[..atom_byte].chars().count();
    assert_eq!(caret_at, atom_at, "{rendered}");
    check_golden("non_ascii_identifiers.txt", &rendered);
}

/// A query with one error and several warnings: errors render first,
/// warnings follow in source order.
#[test]
fn golden_severity_ordering() {
    let q = parse("q(x, u) :- x -[p]-> y, u -[r]-> v, p in a+, p in b+");
    let a = analyze(&q);
    let rendered = a.render(q.source());
    // pin the ordering structurally as well as byte-for-byte
    let first_warning = rendered.find("warning[").expect("has warnings");
    let last_error = rendered.rfind("error[").expect("has errors");
    assert!(
        last_error < first_warning,
        "errors must render before warnings:\n{rendered}"
    );
    check_golden("severity_ordering.txt", &rendered);
}

/// Warning-only rendering: unconstrained path variable and threshold
/// exceedance with the suggested split note.
#[test]
fn golden_threshold_warning() {
    let q = parse(
        "q(x) :- x -[p1]-> y, x -[p2]-> y, x -[p3]-> y, x -[p4]-> y, \
         eq_len(p1, p2), eq_len(p2, p3), eq_len(p3, p4)",
    );
    let cfg = AnalyzerConfig {
        cc_vertex_threshold: 2,
        ..AnalyzerConfig::default()
    };
    let a = analyze_with(&q, &cfg);
    assert!(!a.has_errors());
    assert!(a.warnings().count() > 0);
    check_golden("threshold_warning.txt", &a.render(q.source()));
}

/// Parse the query line (first non-comment line) of a committed
/// `queries/*.ecrpq` corpus file.
fn parse_corpus_file(name: &str) -> Ecrpq {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("queries")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let line = text
        .lines()
        .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .unwrap_or_else(|| panic!("{name}: no query line"));
    parse(line)
}

/// W006 on the committed NP-regime corpus query: the minimizer elides
/// all three universal chords and the diagnostic carries the full
/// machine-applicable rewrite (the text `analyze --fix` writes back).
#[test]
fn golden_minimize_np_diamond_chord() {
    let q = parse_corpus_file("np_diamond_chord.ecrpq");
    let a = analyze(&q);
    assert!(!a.has_errors());
    assert!(
        a.warnings().any(|d| d.code == Code::MinimizableQuery),
        "W006 must fire on the chorded-chain corpus query"
    );
    check_golden("minimize_np_diamond_chord.txt", &a.render(q.source()));
}

/// W006 on the committed PSPACE-regime corpus query: three equality
/// contractions collapse four eq-chained parallel paths to one atom.
#[test]
fn golden_minimize_pspace_eq_star() {
    let q = parse_corpus_file("pspace_eq_star.ecrpq");
    let a = analyze(&q);
    assert!(!a.has_errors());
    assert!(
        a.warnings().any(|d| d.code == Code::MinimizableQuery),
        "W006 must fire on the eq-star corpus query"
    );
    check_golden("minimize_pspace_eq_star.txt", &a.render(q.source()));
}

fn workload_corpus() -> Vec<(String, Ecrpq)> {
    let mut out: Vec<(String, Ecrpq)> = Vec::new();
    for len in [2, 4, 8] {
        out.push((
            format!("tractable_chain(len={len})"),
            tractable_chain_query(len, 2),
        ));
    }
    for k in [3, 4] {
        let mut alphabet = Alphabet::ascii_lower(2);
        out.push((
            format!("clique(k={k})"),
            clique_query(k, "a*", &mut alphabet),
        ));
    }
    for r in [2, 3, 4] {
        out.push((format!("big_component(r={r})"), big_component_query(r, 2)));
    }
    let params = RandomQueryParams::default();
    for seed in 0..5u64 {
        out.push((format!("random(seed={seed})"), random_ecrpq(&params, seed)));
    }
    out
}

/// Golden: the workload regime table the `analyze --workloads` CLI
/// prints, including the planner's large-database strategy column — the
/// acyclicity-aware branch point per query family. The rendering here
/// mirrors the CLI's format strings; a drift in either shows up as a
/// golden diff. Bless with `UPDATE_GOLDEN=1`.
#[test]
fn golden_workload_strategy_table() {
    use ecrpq::eval::planner::{budget_regime, regime_budget};
    use ecrpq::eval::{large_db_strategy, Strategy};
    let mut out = String::new();
    out.push_str(
        "| query | cc_vertex | cc_hedge | tw | combined | param | default budget | large-db strategy |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for (name, q) in workload_corpus() {
        let a = analyze(&q);
        let budget = regime_budget(budget_regime(&a.measures));
        let strategy = match large_db_strategy(&q) {
            Strategy::CqTreedec => "cq+treedec",
            Strategy::Yannakakis => "yannakakis",
            Strategy::DirectProduct => "direct product",
        };
        out.push_str(&format!(
            "| {name} | {} | {} | {} | {} | {} | {budget} | {strategy} |\n",
            a.measures.cc_vertex, a.measures.cc_hedge, a.measures.treewidth, a.combined, a.param,
        ));
    }
    // the corpus must exercise both large-db strategies, or the column
    // (and the golden) stops guarding the planner's branch point
    assert!(out.contains("| yannakakis |"), "{out}");
    assert!(out.contains("| direct product |"), "{out}");
    check_golden("workload_strategy_table.txt", &out);
}

/// Acceptance: on every workload query the analyzer's classification
/// matches `combined_regime`/`param_regime` for the threshold-induced
/// class, under the default and under tight thresholds.
#[test]
fn workload_regimes_agree_with_planner() {
    let configs = [
        AnalyzerConfig::default(),
        AnalyzerConfig {
            cc_vertex_threshold: 1,
            cc_hedge_threshold: 1,
            treewidth_threshold: 1,
            ..AnalyzerConfig::default()
        },
    ];
    for (name, q) in workload_corpus() {
        for cfg in &configs {
            let a = analyze_with(&q, cfg);
            let m = a.measures;
            let bounds = ClassBounds {
                cc_vertex: (m.cc_vertex <= cfg.cc_vertex_threshold)
                    .then_some(cfg.cc_vertex_threshold),
                cc_hedge: (m.cc_hedge <= cfg.cc_hedge_threshold).then_some(cfg.cc_hedge_threshold),
                treewidth: (m.treewidth <= cfg.treewidth_threshold)
                    .then_some(cfg.treewidth_threshold),
            };
            assert_eq!(
                combined_regime(&bounds).to_string(),
                a.combined.to_string(),
                "{name}: combined regime"
            );
            assert_eq!(
                param_regime(&bounds).to_string(),
                a.param.to_string(),
                "{name}: param regime"
            );
        }
    }
}

/// The analyzer gate in `planner::answers` must not change any answer:
/// bit-identical to the ungated direct product search on every workload
/// family (and the workload corpus must be analyzer-clean, so the gate
/// never fires here).
#[test]
fn analyzer_gated_planner_is_bit_identical_on_workloads() {
    for (i, (name, mut q)) in workload_corpus().into_iter().enumerate() {
        assert!(
            !analyze(&q).has_errors(),
            "{name}: workload corpus must be analyzer-clean"
        );
        q.set_free(&[NodeVar(0)]);
        let db = random_db(4, 1.6, 2, i as u64 * 41 + 7);
        let prepared = PreparedQuery::build(&q).expect("workload query is valid");
        let direct = answers_product(&db, &prepared);
        let gated = planner::answers(&db, &q);
        assert_eq!(direct, gated, "{name}: planner answers diverge");
    }
}

/// A provably-empty query reaches the empty answer set without a single
/// product configuration being expanded, regardless of the database.
#[test]
fn error_diagnostics_short_circuit_before_the_search() {
    let q = parse("q(x) :- x -[p]-> y, p in a+, p in b+");
    let a = analyze(&q);
    assert!(a.errors().any(|d| d.severity == Severity::Error));
    let db = random_db(6, 2.0, 2, 3);
    let (answers, stats) = planner::answers_with_stats(&db, &q);
    assert!(answers.is_empty());
    assert_eq!(stats.configurations, 0, "product search must not run");
    let (sat, stats) = planner::evaluate_with_stats(&db, &q);
    assert!(!sat);
    assert_eq!(stats.configurations, 0);
}
