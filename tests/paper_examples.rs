//! The paper's concrete examples, end to end.

use ecrpq::automata::{convolve, relations, Alphabet, Regex, Track};
use ecrpq::eval::planner;
use ecrpq::graph::parse_graph;
use ecrpq::query::{parse_query, RelationRegistry};

/// Example 1.1: `q₁ = ∃y x →π₁ y ∧ x →π₂ y ∧ label(π₁) ∈ a*b ∧
/// label(π₂) ∈ (a+b)*` — a CRPQ.
#[test]
fn example_1_1() {
    let db = parse_graph(
        "u -a-> v\n\
         v -a-> w\n\
         w -b-> t\n\
         u -b-> t\n",
    )
    .unwrap();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x) :- x -(a*b)-> y, x -((a|b)*)-> y",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    assert!(q.is_crpq());
    let answers = planner::answers(&db, &q);
    // u reaches t via aab (∈ a*b) and via b (∈ (a|b)*), both ending at t.
    assert!(answers.contains(&vec![db.node("u").unwrap()]));
    // w reaches t via b; same path works for both atoms.
    assert!(answers.contains(&vec![db.node("w").unwrap()]));
    // t has no outgoing path with label in a*b (no outgoing edges at all);
    // but the CRPQ needs *some* y — t can still use... no: no outgoing
    // edges means only the empty path, and ε ∉ a*b.
    assert!(!answers.contains(&vec![db.node("t").unwrap()]));
}

/// Example 2.1: `q(x, x′) = ∃y x →π₁ y ∧ x′ →π₂ y ∧ eq-len(π₁, π₂)`.
#[test]
fn example_2_1() {
    let db = parse_graph(
        "a1 -a-> a2\n\
         a2 -a-> hub\n\
         b1 -b-> b2\n\
         b2 -b-> hub\n\
         c1 -a-> hub\n",
    )
    .unwrap();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x, x') :- x -[p1]-> y, x' -[p2]-> y, eq_len(p1, p2)",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    assert!(!q.is_crpq());
    let answers = planner::answers(&db, &q);
    let (a1, b1, c1) = (
        db.node("a1").unwrap(),
        db.node("b1").unwrap(),
        db.node("c1").unwrap(),
    );
    // the two 2-step chains match each other
    assert!(answers.contains(&vec![a1, b1]));
    assert!(answers.contains(&vec![b1, a1]));
    // but not the 1-step chain
    assert!(!answers.contains(&vec![a1, c1]));
    // every vertex pairs with itself via two empty paths
    for v in 0..db.num_nodes() as u32 {
        assert!(answers.contains(&vec![v, v]));
    }
}

/// §2: the convolution example `aab ⊗ c ⊗ bb = (a,c,b)(a,⊥,b)(b,⊥,⊥)`.
#[test]
fn convolution_example() {
    let mut alphabet = Alphabet::new();
    let a = alphabet.intern('a');
    let b = alphabet.intern('b');
    let c = alphabet.intern('c');
    let rows = convolve(&[&[a, a, b], &[c], &[b, b]]);
    assert_eq!(
        rows,
        vec![
            vec![Track::Sym(a), Track::Sym(c), Track::Sym(b)],
            vec![Track::Sym(a), Track::Pad, Track::Sym(b)],
            vec![Track::Sym(b), Track::Pad, Track::Pad],
        ]
    );
}

/// §2 lists equality, prefix and equal-length as synchronous; checks their
/// closure under boolean operations (“closed under all Boolean operators”).
#[test]
fn synchronous_closure_properties() {
    let eq = relations::equality(2);
    let pre = relations::prefix(2);
    let el = relations::eq_length(2, 2);
    // equality = prefix ∩ eq-length
    let inter = pre.intersect(&el);
    for (u, v) in [
        (vec![], vec![]),
        (vec![0, 1], vec![0, 1]),
        (vec![0], vec![0, 1]),
    ] {
        assert_eq!(
            eq.contains(&[&u, &v]),
            inter.contains(&[&u, &v]),
            "u={u:?} v={v:?}"
        );
    }
    // complement of equality contains exactly the distinct pairs
    let neq = eq.complement();
    assert!(neq.contains(&[&[0], &[1]]));
    assert!(!neq.contains(&[&[0, 1], &[0, 1]]));
    // union covers both sides
    let u = eq.union(&neq);
    assert!(u.contains(&[&[0], &[1]]));
    assert!(u.contains(&[&[1], &[1]]));
}

/// The paper's remark that ECRPQ = CRPQ + synchronous relations collapses
/// to CRPQ expressiveness when every relation is unary: the general
/// pipeline and the Corollary 2.4 pipeline agree on CRPQs.
#[test]
fn crpq_pipelines_agree() {
    let db = parse_graph(
        "u -a-> v\n\
         v -b-> w\n\
         w -a-> u\n\
         v -a-> u\n",
    )
    .unwrap();
    for re in ["a*b", "(ab)+", "a(b|a)*", "b?a"] {
        let mut alphabet = db.alphabet().clone();
        let lang = Regex::compile_str(re, &mut alphabet).unwrap();
        let mut q = ecrpq::query::Ecrpq::new(alphabet);
        let x = q.node_var("x");
        let y = q.node_var("y");
        q.crpq_atom(x, &lang, re, y);
        q.set_free(&[x, y]);
        let general = planner::answers(&db, &q);
        let crpq = ecrpq::eval::crpq::answers_crpq(&db, &q);
        assert_eq!(general, crpq, "regex {re}");
    }
}

/// Proposition 2.2 context: evaluation must handle empty paths — “there is
/// always an empty path from v to v for any v ∈ V”.
#[test]
fn empty_paths_are_first_class() {
    let db = parse_graph("u -a-> v\n").unwrap();
    let mut alphabet = db.alphabet().clone();
    // x -[p]-> y with p in (a?) : satisfied by the empty path at u (x=y=u)
    let q = parse_query(
        "q(x, y) :- x -[p]-> y, p in a?",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let answers = planner::answers(&db, &q);
    let u = db.node("u").unwrap();
    let v = db.node("v").unwrap();
    assert!(answers.contains(&vec![u, u]));
    assert!(answers.contains(&vec![v, v]));
    assert!(answers.contains(&vec![u, v]));
    assert!(!answers.contains(&vec![v, u]));
}
