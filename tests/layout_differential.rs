//! Differential testing of the flat data layouts: the CSR adjacency index
//! must agree with the naive scan access path on random graphs, and the
//! flat/pruned product layouts must return answer sets bit-identical to
//! the legacy layout — and to the CQ-reduction evaluator — on random
//! graphs and queries.

use ecrpq::eval::product::{answers_product_with_stats_layout, Layout};
use ecrpq::eval::{ecrpq_to_cq, engine, Enumerator, EvalOptions, PreparedQuery, ResourceBudget};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{planted_acyclic_instance, random_db, random_ecrpq, RandomQueryParams};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn params() -> RandomQueryParams {
    RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    }
}

/// Regression: a database with zero nodes must not panic anywhere in the
/// pipeline — CSR freeze, flat-table construction, semijoin sweeps, chunk
/// partitioning — and must return the empty answer set (respectively
/// `false`) at every layout and thread count.
#[test]
fn empty_database_evaluates_cleanly() {
    let mut q = random_ecrpq(&params(), 1234);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = ecrpq::graph::GraphDb::with_alphabet(q.alphabet().clone());
    assert_eq!(db.num_nodes(), 0);
    let prepared = PreparedQuery::build(&q).unwrap();
    for layout in [
        Layout::Legacy,
        Layout::FlatUnpruned,
        Layout::Flat,
        Layout::BitParallel,
    ] {
        let (ans, _) = answers_product_with_stats_layout(&db, &prepared, layout);
        assert!(ans.is_empty(), "{layout:?}");
    }
    for threads in [1usize, 2, 4, 8] {
        for layout in [Layout::Flat, Layout::BitParallel] {
            let opts = EvalOptions::with_threads(threads).with_layout(layout);
            assert!(engine::answers_product(&db, &prepared, &opts).is_empty());
            assert!(!engine::eval_product(&db, &prepared, &opts));
        }
    }
}

/// Regression for the bit-parallel size gate: when the dense configuration
/// space overflows the bitmap budget, `Layout::BitParallel` must downgrade
/// every atom to the scalar BFS and still agree with `Flat` at every
/// thread count. 9 000 vertices × the 2-state eq-length automaton is
/// 1.6·10⁸ configurations — past the stamp gate *and* the (tighter)
/// three-bitmap gate, so the fallback runs the memoized scalar path. The
/// graph is nearly edgeless to keep the run cheap; a single `a`-edge makes
/// the Boolean query satisfiable.
#[test]
fn bitparallel_falls_back_on_oversized_config_space() {
    use ecrpq::workloads::big_component_query;
    let q = big_component_query(2, 2); // free vars default to none: Boolean
    let mut db = ecrpq::graph::GraphDb::with_alphabet(q.alphabet().clone());
    let first = db.add_nodes_anon(9_000);
    db.add_edge(first, 'a', first + 1);
    let prepared = PreparedQuery::build(&q).unwrap();
    let (flat, _) = answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
    let (bitpar, _) = answers_product_with_stats_layout(&db, &prepared, Layout::BitParallel);
    assert_eq!(flat, bitpar, "fallback answers diverge");
    assert_eq!(flat.len(), 1, "satisfiable Boolean query: one empty tuple");
    for threads in [1usize, 2, 4, 8] {
        let opts = EvalOptions::with_threads(threads).with_layout(Layout::BitParallel);
        let par = engine::answers_product(&db, &prepared, &opts);
        assert_eq!(par, flat, "{threads} threads");
        assert!(
            engine::eval_product(&db, &prepared, &opts),
            "{threads} threads"
        );
    }
}

/// Counter-based bounded-delay check on the planted acyclic instance:
/// after the Yannakakis up/down passes every domain is globally
/// consistent, so the streaming enumerator never dead-ends — the
/// backtracker work between consecutive answers is a small constant,
/// independent of the decoy count. The independently-pruned preparation
/// keeps every decoy in D(x), so its first answer only arrives after the
/// enumerator has waded through all of them.
#[test]
fn yannakakis_streaming_has_bounded_delay() {
    let (db, q, expected) = planted_acyclic_instance(600, 4, 7);
    let prepared = PreparedQuery::build(&q).unwrap();
    let tree = ecrpq::analyze::acyclic_join_tree(&q).expect("reduction is acyclic");

    let delays = |e: &Enumerator| -> (Vec<u64>, BTreeSet<Vec<u32>>) {
        let mut it = e.iter();
        let mut got = BTreeSet::new();
        let mut last = it.work();
        let mut delays = Vec::new();
        while let Some(t) = it.next() {
            delays.push(it.work() - last);
            last = it.work();
            got.insert(t);
        }
        delays.push(it.work() - last); // exhaustion tail
        (delays, got)
    };

    let yan = Enumerator::yannakakis(&db, &prepared, &tree, &ResourceBudget::unlimited());
    let (yan_delays, yan_got) = delays(&yan);
    assert_eq!(yan_got, expected);
    let yan_max = yan_delays.iter().copied().max().unwrap();
    assert!(
        yan_max <= 64,
        "yannakakis delay {yan_max} steps — not output-sensitive"
    );

    let flat = Enumerator::new(&db, &prepared);
    let (flat_delays, flat_got) = delays(&flat);
    assert_eq!(flat_got, expected, "preparations disagree");
    let flat_max = flat_delays.iter().copied().max().unwrap();
    assert!(
        flat_max >= 600,
        "independent sweeps pruned the decoys ({flat_max} steps)? — \
         the instance no longer exercises the delay gap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming enumerator must produce exactly the materialized
    /// answer set — same tuples, no duplicates — under both the
    /// independent-sweep preparation and (when the CQ reduction is
    /// acyclic) the Yannakakis preparation.
    #[test]
    fn streamed_answers_match_materialized(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(33_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(5, 1.6, 2, seed.wrapping_mul(37).wrapping_add(13));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let (materialized, _) = answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
        let e = Enumerator::new(&db, &prepared);
        let streamed: Vec<Vec<u32>> = e.iter().collect();
        let as_set: BTreeSet<Vec<u32>> = streamed.iter().cloned().collect();
        prop_assert_eq!(streamed.len(), as_set.len(), "duplicate tuples, seed={}", seed);
        prop_assert_eq!(&as_set, &materialized, "streamed vs materialized seed={}", seed);
        if let Some(tree) = ecrpq::analyze::acyclic_join_tree(&q) {
            let ey = Enumerator::yannakakis(&db, &prepared, &tree, &ResourceBudget::unlimited());
            let sy: Vec<Vec<u32>> = ey.iter().collect();
            let sy_set: BTreeSet<Vec<u32>> = sy.iter().cloned().collect();
            prop_assert_eq!(sy.len(), sy_set.len(), "yannakakis duplicates, seed={}", seed);
            prop_assert_eq!(&sy_set, &materialized, "yannakakis stream seed={}", seed);
        }
    }

    /// Regression: zero free variables makes the query *Boolean* — the
    /// enumeration must yield exactly one empty tuple iff the query is
    /// satisfiable, identically across all three layouts and any thread
    /// count (a buggy odometer could emit the empty tuple once per
    /// satisfying assignment or chunk, or never).
    #[test]
    fn boolean_query_yields_one_empty_tuple(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(91_000));
        q.set_free(&[]);
        let db = random_db(4, 1.6, 2, seed.wrapping_mul(31).wrapping_add(3));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let sat = ecrpq::eval::product::eval_product(&db, &prepared);
        for layout in [
            Layout::Legacy,
            Layout::FlatUnpruned,
            Layout::Flat,
            Layout::BitParallel,
        ] {
            let (ans, _) = answers_product_with_stats_layout(&db, &prepared, layout);
            if sat {
                prop_assert_eq!(ans.len(), 1, "layout={:?} seed={}", layout, seed);
                prop_assert!(ans.contains(&Vec::new()));
            } else {
                prop_assert!(ans.is_empty(), "layout={:?} seed={}", layout, seed);
            }
        }
        for threads in [2usize, 4, 8] {
            for layout in [Layout::Flat, Layout::BitParallel] {
                let opts = EvalOptions::with_threads(threads).with_layout(layout);
                let par = engine::answers_product(&db, &prepared, &opts);
                if sat {
                    prop_assert_eq!(par.len(), 1, "threads={} layout={:?} seed={}", threads, layout, seed);
                    prop_assert!(par.contains(&Vec::new()));
                } else {
                    prop_assert!(par.is_empty(), "threads={} layout={:?} seed={}", threads, layout, seed);
                }
            }
        }
    }

    /// CSR `successors`/`predecessors` vs the pre-CSR scan path and a
    /// naive transpose built from the edge list.
    #[test]
    fn csr_adjacency_matches_scan(seed in 0..100_000u64, n in 0..12usize) {
        let db = random_db(n, 1.8, 3, seed);
        let num_labels = db.alphabet().len() as u8;
        for v in 0..db.num_nodes() as u32 {
            for a in 0..num_labels {
                let csr = db.successors(v, a).to_vec();
                let scan: Vec<u32> = db.successors_scan(v, a).collect();
                prop_assert_eq!(&csr, &scan, "successors v={} a={} seed={}", v, a, seed);
                // bulk accessors expose the same ranges as the slice API
                let bulk = &db.csr_targets()[db.successor_range(v, a)];
                prop_assert_eq!(bulk, &csr[..], "bulk range v={} a={} seed={}", v, a, seed);
                let mut naive: Vec<u32> = db
                    .edges()
                    .filter(|e| e.dst == v && e.label == a)
                    .map(|e| e.src)
                    .collect();
                naive.sort_unstable();
                naive.dedup();
                let pred = db.predecessors(v, a).to_vec();
                prop_assert_eq!(&pred, &naive, "predecessors v={} a={} seed={}", v, a, seed);
            }
            // out-of-alphabet labels are empty, not a panic
            prop_assert!(db.successors(v, num_labels + 5).is_empty());
            prop_assert!(db.predecessors(v, num_labels + 5).is_empty());
            prop_assert!(db.successor_range(v, num_labels + 5).is_empty());
        }
    }

    /// The three product layouts must agree bit-for-bit on the answer set;
    /// semijoin pruning may only shrink the enumeration work.
    #[test]
    fn layouts_agree_on_answers(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(55_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(5, 1.6, 2, seed.wrapping_mul(29).wrapping_add(11));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let (legacy, legacy_stats) =
            answers_product_with_stats_layout(&db, &prepared, Layout::Legacy);
        let (flat, flat_stats) =
            answers_product_with_stats_layout(&db, &prepared, Layout::FlatUnpruned);
        let (pruned, pruned_stats) =
            answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
        let (bitpar, _) = answers_product_with_stats_layout(&db, &prepared, Layout::BitParallel);
        prop_assert_eq!(&flat, &legacy, "flat vs legacy seed={}", seed);
        prop_assert_eq!(&pruned, &legacy, "pruned vs legacy seed={}", seed);
        // the bit-parallel layout shares the pruned semijoin domains but
        // swaps the BFS inner loop; answers must stay bit-identical
        prop_assert_eq!(&bitpar, &legacy, "bitparallel vs legacy seed={}", seed);
        // without pruning the two BFS implementations walk the same
        // enumeration tree and answer the same feasibility questions
        // (popped-configuration counts may differ slightly: the queue
        // orders differ, so the early exit on an accepting configuration
        // can trigger at different points)
        prop_assert_eq!(flat_stats.checks, legacy_stats.checks);
        prop_assert_eq!(flat_stats.cache_hits, legacy_stats.cache_hits);
        prop_assert_eq!(flat_stats.assignments, legacy_stats.assignments);
        // pruning only removes work, never adds it
        prop_assert!(pruned_stats.assignments <= flat_stats.assignments);
        prop_assert!(pruned_stats.checks <= flat_stats.checks);
    }

    /// Pruned product answers vs the independent Lemma 4.3 CQ reduction
    /// (which runs its own BFS, untouched by the layout work).
    #[test]
    fn pruned_product_matches_cq_reduction(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(77_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed.wrapping_mul(23).wrapping_add(7));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let (product, _) = answers_product_with_stats_layout(&db, &prepared, Layout::Flat);
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        let via_cq = engine::answers_cq(&rdb, &cq, &EvalOptions::sequential());
        let product_u32: std::collections::BTreeSet<Vec<u32>> = product.into_iter().collect();
        prop_assert_eq!(product_u32, via_cq, "product vs cq seed={}", seed);
    }
}
