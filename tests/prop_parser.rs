//! Property-based tests for the query parser: generated well-formed
//! queries parse and validate; arbitrary garbage never panics.

use ecrpq::automata::Alphabet;
use ecrpq::query::{parse_query, RelationRegistry};
use proptest::prelude::*;

/// Generates well-formed query strings from the grammar.
fn arb_query_text() -> impl Strategy<Value = String> {
    let var = prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")];
    let regex = prop_oneof![
        Just("a*b"),
        Just("(a|b)*"),
        Just("ab?"),
        Just("a+"),
        Just("()"),
    ];
    let reach =
        (var.clone(), 0usize..100, var.clone()).prop_map(|(s, i, d)| format!("{s} -[p{i}]-> {d}"));
    let reach_lang = (var.clone(), regex, var).prop_map(|(s, r, d)| format!("{s} -({r})-> {d}"));
    let atom = prop_oneof![reach, reach_lang];
    proptest::collection::vec(atom, 1..5).prop_map(|atoms| atoms.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-formed inputs either parse (and then validate) or produce a
    /// clean error (duplicate path variables are legitimately rejected).
    #[test]
    fn wellformed_inputs_parse_or_error(text in arb_query_text()) {
        let mut alphabet = Alphabet::ascii_lower(2);
        match parse_query(&text, &mut alphabet, &RelationRegistry::new()) {
            Ok(q) => {
                q.validate().expect("parsed query must validate");
                // parsing is deterministic
                let mut a2 = Alphabet::ascii_lower(2);
                let q2 = parse_query(&text, &mut a2, &RelationRegistry::new()).unwrap();
                prop_assert_eq!(q.to_string(), q2.to_string());
            }
            Err(e) => {
                // only the duplicate-path-variable clash is expected here
                prop_assert!(
                    e.message.contains("two reachability atoms"),
                    "unexpected error on `{}`: {}", text, e
                );
            }
        }
    }

    /// Arbitrary input never panics the parser.
    #[test]
    fn garbage_never_panics(text in "[ -~]{0,60}") {
        let mut alphabet = Alphabet::ascii_lower(2);
        let _ = parse_query(&text, &mut alphabet, &RelationRegistry::new());
    }

    /// Unicode garbage never panics either.
    #[test]
    fn unicode_never_panics(text in "\\PC{0,30}") {
        let mut alphabet = Alphabet::new();
        let _ = parse_query(&text, &mut alphabet, &RelationRegistry::new());
    }

    /// Parsed measures are stable across re-parsing.
    #[test]
    fn measures_deterministic(text in arb_query_text()) {
        let mut a1 = Alphabet::ascii_lower(2);
        let mut a2 = Alphabet::ascii_lower(2);
        let q1 = parse_query(&text, &mut a1, &RelationRegistry::new());
        let q2 = parse_query(&text, &mut a2, &RelationRegistry::new());
        if let (Ok(q1), Ok(q2)) = (q1, q2) {
            prop_assert_eq!(q1.measures(), q2.measures());
        }
    }
}
