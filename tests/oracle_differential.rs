//! Differential testing against the brute-force oracle.
//!
//! `ecrpq::workloads::oracle_answers` evaluates by exhaustive enumeration
//! of node assignments and bounded-length walks, sharing no machinery
//! with the real evaluators except the raw `SyncRel::contains` membership
//! test. Because walks are bounded, the oracle is sound but possibly
//! incomplete, so each comparison asserts `oracle ⊆ engine`
//! unconditionally and asserts exact equality only when the oracle's
//! answer set has stabilized under a growing length bound (which on these
//! tiny instances it almost always has — the suites additionally assert
//! that most cases converge, so the equality check cannot silently rot).
//!
//! Seeds are offset by `ECRPQ_TEST_SEED` (see `workloads::env_seed`) and
//! printed in every assertion message.

use ecrpq::eval::cq_eval::{answers_cq, answers_cq_treedec};
use ecrpq::eval::engine;
use ecrpq::eval::product::answers_product;
use ecrpq::eval::{
    answers_product_with_stats_layout, ecrpq_to_cq, eval_product, EvalOptions, Layout,
    PreparedQuery,
};
use ecrpq::graph::NodeId;
use ecrpq::query::{Ecrpq, NodeVar, RelationRegistry};
use ecrpq::workloads::{
    env_seed, oracle_answers, oracle_eval, random_db, random_ecrpq, RandomQueryParams,
};
use std::collections::BTreeSet;

/// Walk-length bound for the oracle. Minimal witnesses on 4-node graphs
/// with 2-symbol relations fit comfortably; convergence is asserted.
const MAX_LEN: usize = 8;

/// Has the oracle's answer set stabilized? (Same set at a shorter bound
/// — strong evidence that no answer needs a longer witness.)
fn converged(db: &ecrpq::graph::GraphDb, q: &Ecrpq, at_bound: &BTreeSet<Vec<NodeId>>) -> bool {
    oracle_answers(db, q, MAX_LEN - 2) == *at_bound
}

#[test]
fn oracle_agrees_with_every_answer_evaluator() {
    let base = env_seed(0);
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 2,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    let mut settled = 0usize;
    const CASES: u64 = 15;
    for case in 0..CASES {
        let seed = base + case;
        let mut q = random_ecrpq(&params, seed + 4000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed * 23 + 5);
        let prepared = PreparedQuery::build(&q).unwrap();
        let truth = oracle_answers(&db, &q, MAX_LEN);
        let exact = converged(&db, &q, &truth);
        settled += exact as usize;

        // every layout of the product search
        for layout in [
            Layout::Legacy,
            Layout::FlatUnpruned,
            Layout::Flat,
            Layout::BitParallel,
        ] {
            let (got, _) = answers_product_with_stats_layout(&db, &prepared, layout);
            check(
                &truth,
                &got,
                exact,
                &format!("seed {seed}: {layout:?} layout"),
            );
        }
        // every thread count of the parallel engine, flat and bit-parallel
        for threads in [1usize, 2, 4, 8] {
            for layout in [Layout::Flat, Layout::BitParallel] {
                let opts = EvalOptions::with_threads(threads).with_layout(layout);
                let got = engine::answers_product(&db, &prepared, &opts);
                check(
                    &truth,
                    &got,
                    exact,
                    &format!("seed {seed}: {threads} thread(s), {layout:?}"),
                );
            }
        }
        // the Lemma 4.3 reduction, backtracking and treedec
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        check(
            &truth,
            &answers_cq(&rdb, &cq),
            exact,
            &format!("seed {seed}: CQ backtracking"),
        );
        check(
            &truth,
            &answers_cq_treedec(&rdb, &cq),
            exact,
            &format!("seed {seed}: CQ treedec"),
        );
    }
    assert!(
        settled as u64 >= CASES - 3,
        "oracle converged on only {settled}/{CASES} cases (base seed {base}) — \
         raise MAX_LEN or shrink the instances"
    );
}

/// The Yannakakis semijoin program + streaming enumerator vs the oracle
/// and the product search, at every thread count. Only queries whose CQ
/// reduction is α-acyclic qualify (the planner's own gate); the suite
/// asserts that the random workload keeps producing enough of them.
#[test]
fn oracle_agrees_with_yannakakis_streaming() {
    let base = env_seed(0);
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 2,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    let mut acyclic = 0usize;
    const CASES: u64 = 15;
    for case in 0..CASES {
        let seed = base + case;
        let mut q = random_ecrpq(&params, seed + 8000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed * 19 + 3);
        let Some(tree) = ecrpq::analyze::acyclic_join_tree(&q) else {
            continue;
        };
        acyclic += 1;
        let prepared = PreparedQuery::build(&q).unwrap();
        let truth = oracle_answers(&db, &q, MAX_LEN);
        let exact = converged(&db, &q, &truth);
        let product = answers_product(&db, &prepared);
        for threads in [1usize, 2, 4, 8] {
            let opts = EvalOptions::with_threads(threads);
            let (got, _) = engine::answers_yannakakis_with_stats(&db, &prepared, &tree, &opts);
            check(
                &truth,
                &got,
                exact,
                &format!("seed {seed}: yannakakis, {threads} thread(s)"),
            );
            assert_eq!(
                got, product,
                "seed {seed}: yannakakis vs product at {threads} thread(s)"
            );
        }
        // governed with an unlimited budget: must complete bit-identically
        let o = engine::answers_yannakakis_governed_traced(
            &db,
            &prepared,
            &tree,
            &EvalOptions::sequential(),
            &ecrpq::eval::NoopTracer,
        );
        assert!(o.termination.is_complete(), "seed {seed}: spurious trip");
        assert_eq!(o.answers, product, "seed {seed}: governed yannakakis");
    }
    assert!(
        acyclic as u64 >= CASES / 2,
        "only {acyclic}/{CASES} acyclic cases (base seed {base}) — workload drifted"
    );
}

/// `oracle ⊆ engine` always; equality when the oracle has converged.
fn check(truth: &BTreeSet<Vec<NodeId>>, engine: &BTreeSet<Vec<NodeId>>, exact: bool, what: &str) {
    assert!(
        truth.is_subset(engine),
        "{what}: engine missed oracle answers {:?}",
        truth.difference(engine).collect::<Vec<_>>()
    );
    if exact {
        assert_eq!(engine, truth, "{what}: engine reported extra answers");
    }
}

#[test]
fn oracle_agrees_with_boolean_evaluation() {
    let base = env_seed(0);
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    let (mut sat, mut settled) = (0usize, 0usize);
    const CASES: u64 = 30;
    for case in 0..CASES {
        let seed = base + case;
        let q = random_ecrpq(&params, seed + 6000);
        let db = random_db(4, 1.6, 2, seed * 17 + 9);
        let prepared = PreparedQuery::build(&q).unwrap();
        let truth = oracle_eval(&db, &q, MAX_LEN);
        let exact = truth == oracle_eval(&db, &q, MAX_LEN - 2);
        settled += exact as usize;
        let got = eval_product(&db, &prepared);
        if truth {
            assert!(
                got,
                "seed {seed}: engine says NO but the oracle has a witness"
            );
        }
        if exact {
            assert_eq!(got, truth, "seed {seed}: boolean verdicts differ");
        }
        sat += got as usize;
    }
    assert!(
        sat > 3,
        "too few satisfiable instances ({sat}, base seed {base})"
    );
    assert!(
        settled as u64 >= CASES - 5,
        "oracle converged on only {settled}/{CASES} cases (base seed {base})"
    );
}

#[test]
fn oracle_agrees_on_shared_path_variables() {
    // Queries where one path variable feeds several relation atoms — the
    // Lemma 4.1 merge territory. The oracle handles sharing by simple
    // backtracking, the engine by merging automata; they must agree.
    let base = env_seed(0);
    let texts = [
        "q(x, y) :- x -[p]-> y, x -[r]-> y, eq(p, r), p in (ab)*",
        "q(x, y) :- x -[p]-> y, y -[r]-> x, eq_len(p, r)",
        "q(x, y) :- x -[p]-> y, x -[r]-> y, prefix(p, r), r in a*b*",
    ];
    for (i, text) in texts.iter().enumerate() {
        for case in 0..6u64 {
            let seed = base + case;
            let db = random_db(4, 1.6, 2, seed * 13 + i as u64);
            let mut alphabet = db.alphabet().clone();
            let q = ecrpq::query::parse_query(text, &mut alphabet, &RelationRegistry::new())
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            let prepared = PreparedQuery::build(&q).unwrap();
            let truth = oracle_answers(&db, &q, MAX_LEN);
            let exact = converged(&db, &q, &truth);
            let got = answers_product(&db, &prepared);
            check(&truth, &got, exact, &format!("query {i}, seed {seed}"));
            let got_par = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(3));
            check(
                &truth,
                &got_par,
                exact,
                &format!("query {i}, seed {seed}, 3 threads"),
            );
        }
    }
}
