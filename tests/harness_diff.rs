//! Regression-diff verdicts over the public harness API, including the
//! committed `BENCH_*.json` trajectories themselves: every committed
//! artifact must parse, self-diff clean (exit 0), and fail under a
//! planted 2x uniform slowdown (exit 1). The synthetic cases pin the
//! whole verdict/exit-code mapping — improvement, within-tolerance
//! noise, real regression, missing metric, schema drift — at the
//! integration level a CI caller sees.

use ecrpq_bench::harness::diff::{classify, diff, diff_keys, Direction, Verdict};
use ecrpq_bench::harness::{json, Json, Tolerances};
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn parse(text: &str) -> Json {
    json::parse(text).expect("test document parses")
}

#[test]
fn committed_trajectories_self_diff_clean_and_catch_planted_slowdowns() {
    for artifact in [
        "BENCH_bitparallel.json",
        "BENCH_yannakakis.json",
        "BENCH_minimize.json",
        "BENCH_server.json",
    ] {
        let text = std::fs::read_to_string(repo_path(artifact)).expect("committed artifact");
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{artifact}: {e}"));
        assert!(diff_keys(&doc, &doc).is_empty(), "{artifact} schema");
        let tol = Tolerances::default();
        let clean = diff(&doc, &doc, &tol, None);
        assert_eq!(
            clean.exit_code(),
            0,
            "{artifact} self-diff: {:?}",
            clean.lines()
        );
        assert!(
            !clean.metrics.is_empty(),
            "{artifact} must carry gating metrics"
        );
        let planted = diff(&doc, &doc, &tol, Some(2.0));
        assert_eq!(
            planted.exit_code(),
            1,
            "{artifact} must fail under a planted 2x slowdown"
        );
    }
}

#[test]
fn verdicts_and_exit_codes_cover_the_matrix() {
    let baseline = parse(r#"{"speedup_best": 4.0, "rows": [{"flat_ms": 100.0}]}"#);
    let tol = Tolerances::default();

    // improvement: faster and higher-speedup beyond tolerance -> exit 0
    let improved = parse(r#"{"speedup_best": 8.0, "rows": [{"flat_ms": 40.0}]}"#);
    let r = diff(&improved, &baseline, &tol, None);
    assert_eq!(r.exit_code(), 0);
    assert!(r.metrics.iter().all(|m| m.verdict == Verdict::Improvement));

    // within-tolerance noise (~10% against a 35% default) -> exit 0
    let noisy = parse(r#"{"speedup_best": 3.7, "rows": [{"flat_ms": 110.0}]}"#);
    let r = diff(&noisy, &baseline, &tol, None);
    assert_eq!(r.exit_code(), 0);
    assert!(r.metrics.iter().all(|m| m.verdict == Verdict::Within));

    // real regression: 2x slower -> exit 1, regression sorted first
    let slow = parse(r#"{"speedup_best": 4.0, "rows": [{"flat_ms": 200.0}]}"#);
    let r = diff(&slow, &baseline, &tol, None);
    assert_eq!(r.exit_code(), 1);
    assert_eq!(r.metrics[0].verdict, Verdict::Regression);
    assert_eq!(r.metrics[0].leaf, "flat_ms");

    // missing gating metric (same schema, shorter rows) -> exit 3
    let two_rows = parse(r#"{"rows": [{"flat_ms": 10.0}, {"flat_ms": 20.0}]}"#);
    let one_row = parse(r#"{"rows": [{"flat_ms": 10.0}]}"#);
    let r = diff(&one_row, &two_rows, &tol, None);
    assert_eq!(r.exit_code(), 3);
    assert_eq!(r.missing, vec!["rows[1].flat_ms".to_string()]);

    // schema drift (renamed key) -> exit 4, outranking the missing metric
    let renamed = parse(r#"{"rows": [{"flat_millis": 10.0}, {"flat_millis": 20.0}]}"#);
    let r = diff(&renamed, &two_rows, &tol, None);
    assert_eq!(r.exit_code(), 4);
    assert!(r.schema_drift.iter().any(|d| d.contains("rows[].flat_ms")));
}

#[test]
fn per_key_tolerance_overrides_only_their_key() {
    let baseline = parse(r#"{"prepare_ms": 10.0, "speedup_best": 4.0}"#);
    let fresh = parse(r#"{"prepare_ms": 30.0, "speedup_best": 4.0}"#);
    // default tolerance: the 3x prepare_ms blowup is a regression
    assert_eq!(
        diff(&fresh, &baseline, &Tolerances::default(), None).exit_code(),
        1
    );
    // a per-key override wide enough for prepare cost passes, and
    // speedup_best is still held to the default
    let tol = Tolerances {
        default_rel: 0.35,
        per_key: vec![("prepare_ms".to_string(), 3.0)],
    };
    assert_eq!(diff(&fresh, &baseline, &tol, None).exit_code(), 0);
    let worse_speedup = parse(r#"{"prepare_ms": 30.0, "speedup_best": 1.0}"#);
    assert_eq!(diff(&worse_speedup, &baseline, &tol, None).exit_code(), 1);
}

#[test]
fn metric_classification_drives_gating() {
    assert_eq!(classify("flat_ms"), Direction::LowerBetter);
    assert_eq!(classify("p99_ms"), Direction::LowerBetter);
    assert_eq!(classify("speedup_single_thread"), Direction::HigherBetter);
    assert_eq!(classify("configs_per_sec"), Direction::HigherBetter);
    assert_eq!(classify("queries_per_sec"), Direction::HigherBetter);
    // counts, seeds and totals never gate
    assert_eq!(classify("nodes"), Direction::Info);
    assert_eq!(classify("seed"), Direction::Info);
    assert_eq!(classify("configs"), Direction::Info);
    assert_eq!(classify("answers"), Direction::Info);

    // and the Info classification really is inert end to end
    let a = parse(r#"{"nodes": 10, "answers": 1}"#);
    let b = parse(r#"{"nodes": 100000, "answers": 999}"#);
    let r = diff(&a, &b, &Tolerances::default(), None);
    assert_eq!(r.exit_code(), 0);
    assert!(r.metrics.is_empty());
}
