//! Coherence tests for the public facade: the features added on top of
//! plain evaluation (optimizer, satisfiability, counting, unions) compose
//! through `ecrpq::*` as documented.

use ecrpq::eval::optimize::{optimize, Simplified};
use ecrpq::eval::product::{answers_product, eval_product};
use ecrpq::eval::{count_ecrpq_assignments, planner, satisfiable, PreparedQuery};
use ecrpq::query::{NodeVar, Uecrpq};
use ecrpq::workloads::{random_db, random_ecrpq, RandomQueryParams};

#[test]
fn optimizer_differential_on_workload_queries() {
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 4,
        rel_atoms: 3,
        max_arity: 2,
        num_symbols: 2,
    };
    for seed in 0..30u64 {
        let mut q = random_ecrpq(&params, seed + 9000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.6, 2, seed * 11 + 2);
        let before = answers_product(&db, &PreparedQuery::build(&q).unwrap());
        match optimize(&q).unwrap() {
            Simplified::Query(opt) => {
                let after = answers_product(&db, &PreparedQuery::build(&opt).unwrap());
                assert_eq!(before, after, "seed {seed}: {q} vs {opt}");
                // measures never grow
                let (mb, ma) = (q.measures(), opt.measures());
                assert!(ma.cc_vertex <= mb.cc_vertex, "seed {seed}");
                assert!(ma.cc_hedge <= mb.cc_hedge, "seed {seed}");
            }
            Simplified::ConstFalse => {
                assert!(before.is_empty(), "seed {seed}: const-false with answers");
            }
        }
    }
}

#[test]
fn satisfiability_consistent_with_planner() {
    let params = RandomQueryParams::default();
    let mut sat_count = 0;
    for seed in 0..30u64 {
        let q = random_ecrpq(&params, seed + 9100);
        match satisfiable(&q).unwrap() {
            Some(witness_db) => {
                sat_count += 1;
                // the canonical witness database satisfies the query
                assert!(
                    planner::evaluate(&witness_db, &q),
                    "seed {seed}: witness db fails {q}"
                );
            }
            None => {
                // unsatisfiable everywhere: in particular on a random db
                let db = random_db(4, 2.0, 2, seed);
                assert!(!planner::evaluate(&db, &q), "seed {seed}");
            }
        }
    }
    assert!(
        sat_count > 10,
        "workload degenerate: {sat_count} satisfiable"
    );
}

#[test]
fn counting_union_and_witnesses_compose() {
    let db = ecrpq::workloads::cycle_db(12, 1);
    let mut q1 = ecrpq::workloads::tractable_chain_query(1, 1);
    let all1: Vec<NodeVar> = (0..q1.num_node_vars() as u32).map(NodeVar).collect();
    q1.set_free(&all1);
    // counting matches enumeration
    let prepared = PreparedQuery::build(&q1).unwrap();
    let n_enum = answers_product(&db, &prepared).len() as u64;
    assert_eq!(count_ecrpq_assignments(&db, &prepared), n_enum);
    // a union of the query with itself has the same answers
    let u = Uecrpq::from_disjuncts(vec![q1.clone(), q1.clone()]);
    assert_eq!(planner::answers_union(&db, &u), planner::answers(&db, &q1));
    // witnesses per answer
    let with_wit = ecrpq::eval::product::answers_with_witnesses(&db, &prepared);
    assert_eq!(with_wit.len() as u64, n_enum);
    for (_, w) in &with_wit {
        for (_, path) in &w.paths {
            assert!(path.is_valid_in(&db));
            assert!(!path.is_empty()); // eq_len_min(…,1) forbids ε
        }
    }
}

#[test]
fn boolean_query_consistency_via_every_entry_point() {
    let params = RandomQueryParams::default();
    for seed in 0..20u64 {
        let q = random_ecrpq(&params, seed + 9200);
        let db = random_db(5, 1.5, 2, seed * 3 + 7);
        let prepared = PreparedQuery::build(&q).unwrap();
        let direct = eval_product(&db, &prepared);
        assert_eq!(planner::evaluate(&db, &q), direct, "seed {seed}");
        // a query unsatisfiable in the abstract cannot hold on db
        if satisfiable(&q).unwrap().is_none() {
            assert!(!direct, "seed {seed}");
        }
    }
}
