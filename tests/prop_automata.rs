//! Property-based tests for the automata substrate.

use ecrpq::automata::{Alphabet, BitSet, Nfa, Regex, Symbol};
use proptest::prelude::*;

/// A strategy for small random NFAs over a 2-symbol alphabet.
fn arb_nfa() -> impl Strategy<Value = Nfa<Symbol>> {
    (
        2usize..6,
        proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 0..18),
        proptest::collection::vec(0u32..6, 1..4),
    )
        .prop_map(|(n, transitions, finals)| {
            let n = n.max(1);
            let mut nfa = Nfa::with_states(n);
            nfa.set_initial(0);
            for (q, s, t) in transitions {
                if (q as usize) < n && (t as usize) < n {
                    nfa.add_transition(q, s, t);
                }
            }
            for f in finals {
                if (f as usize) < n {
                    nfa.set_final(f);
                }
            }
            nfa.normalize();
            nfa
        })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u8..2, 0..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Determinization preserves the language.
    #[test]
    fn determinize_preserves(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize(&[0, 1]);
        prop_assert_eq!(nfa.accepts(&word), dfa.accepts(&word));
    }

    /// Minimization preserves the language and never grows.
    #[test]
    fn minimize_preserves(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize(&[0, 1]);
        let min = dfa.minimize();
        prop_assert!(min.num_states() <= dfa.num_states());
        prop_assert_eq!(dfa.accepts(&word), min.accepts(&word));
    }

    /// Complement is exact on every word.
    #[test]
    fn complement_is_exact(nfa in arb_nfa(), word in arb_word()) {
        let dfa = nfa.determinize(&[0, 1]);
        prop_assert_eq!(dfa.accepts(&word), !dfa.complement().accepts(&word));
    }

    /// Intersection = conjunction of memberships.
    #[test]
    fn intersection_is_conjunction(a in arb_nfa(), b in arb_nfa(), word in arb_word()) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.accepts(&word), a.accepts(&word) && b.accepts(&word));
    }

    /// Union = disjunction of memberships.
    #[test]
    fn union_is_disjunction(a in arb_nfa(), b in arb_nfa(), word in arb_word()) {
        let u = a.union(&b);
        prop_assert_eq!(u.accepts(&word), a.accepts(&word) || b.accepts(&word));
    }

    /// Reversal accepts exactly the reversed words.
    #[test]
    fn reverse_is_exact(nfa in arb_nfa(), word in arb_word()) {
        let rev = nfa.reverse();
        let mut w = word.clone();
        w.reverse();
        prop_assert_eq!(nfa.accepts(&word), rev.accepts(&w));
    }

    /// ε-removal preserves the language and leaves no ε-transitions.
    #[test]
    fn epsilon_removal(a in arb_nfa(), b in arb_nfa(), word in arb_word()) {
        // build something with ε-transitions via combinators
        let c = a.concat(&b).optional();
        let e = c.remove_epsilon();
        prop_assert!(!e.has_epsilon());
        prop_assert_eq!(c.accepts(&word), e.accepts(&word));
    }

    /// Emptiness agrees with the shortest-word search.
    #[test]
    fn emptiness_vs_shortest(nfa in arb_nfa()) {
        prop_assert_eq!(nfa.is_empty(), nfa.shortest_word().is_none());
        if let Some(w) = nfa.shortest_word() {
            prop_assert!(nfa.accepts(&w));
        }
    }

    /// Trim preserves the language.
    #[test]
    fn trim_preserves(nfa in arb_nfa(), word in arb_word()) {
        prop_assert_eq!(nfa.accepts(&word), nfa.trim().accepts(&word));
    }

    /// `a.concat(b)` accepts every split concatenation.
    #[test]
    fn concat_contains_products(a in arb_nfa(), b in arb_nfa(), u in arb_word(), v in arb_word()) {
        if a.accepts(&u) && b.accepts(&v) {
            let mut w = u.clone();
            w.extend_from_slice(&v);
            prop_assert!(a.concat(&b).accepts(&w));
        }
    }

    /// Kleene star: accepts ε and is closed under append-one-more.
    #[test]
    fn star_closure(a in arb_nfa(), u in arb_word(), v in arb_word()) {
        let s = a.star();
        prop_assert!(s.accepts(&[]));
        if s.accepts(&u) && a.accepts(&v) {
            let mut w = u.clone();
            w.extend_from_slice(&v);
            prop_assert!(s.accepts(&w));
        }
    }
}

/// A scripted `BitSet` op, mirrored against a naive `Vec<bool>` model.
#[derive(Debug, Clone)]
enum BitOp {
    Insert(usize),
    Remove(usize),
    UnionAssign(Vec<usize>),
    OrWord(usize, u64),
    ClearWord(usize),
}

fn arb_bitop(cap: usize) -> impl Strategy<Value = BitOp> {
    prop_oneof![
        (0..cap).prop_map(BitOp::Insert),
        (0..cap).prop_map(BitOp::Remove),
        proptest::collection::vec(0..cap, 0..8).prop_map(BitOp::UnionAssign),
        (0..cap / 64, 0u64..=u64::MAX).prop_map(|(w, m)| BitOp::OrWord(w, m)),
        (0..cap.div_ceil(64)).prop_map(BitOp::ClearWord),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `BitSet` against a `Vec<bool>` model through a random op script:
    /// membership, length, word view, and both iterators must agree after
    /// every step, and change-reporting ops must report the model's delta.
    #[test]
    fn bitset_matches_vec_bool_model(ops in proptest::collection::vec(arb_bitop(192), 0..40)) {
        const CAP: usize = 192;
        let mut s = BitSet::new(CAP);
        let mut model = [false; CAP];
        for op in ops {
            match op {
                BitOp::Insert(i) => {
                    let fresh = !model[i];
                    model[i] = true;
                    prop_assert_eq!(s.insert(i), fresh);
                }
                BitOp::Remove(i) => {
                    let present = model[i];
                    model[i] = false;
                    prop_assert_eq!(s.remove(i), present);
                }
                BitOp::UnionAssign(elems) => {
                    let other = BitSet::from_iter_with_capacity(CAP, elems.iter().copied());
                    let grew = elems.iter().any(|&i| !model[i]);
                    for &i in &elems {
                        model[i] = true;
                    }
                    prop_assert_eq!(s.union_assign(&other), grew);
                }
                BitOp::OrWord(w, mask) => {
                    let mut newly = 0u64;
                    for b in 0..64 {
                        if mask & (1 << b) != 0 && !model[w * 64 + b] {
                            newly |= 1 << b;
                            model[w * 64 + b] = true;
                        }
                    }
                    prop_assert_eq!(s.or_word(w, mask), newly);
                }
                BitOp::ClearWord(w) => {
                    for b in 0..64 {
                        if let Some(m) = model.get_mut(w * 64 + b) {
                            *m = false;
                        }
                    }
                    s.clear_word(w);
                }
            }
            let expected: Vec<usize> =
                (0..CAP).filter(|&i| model[i]).collect();
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), expected.clone());
            prop_assert_eq!(s.iter_ones().collect::<Vec<_>>(), expected.clone());
            prop_assert_eq!(s.len(), expected.len());
            for (w, &word) in s.words().iter().enumerate() {
                for b in 0..64 {
                    let bit = word & (1 << b) != 0;
                    prop_assert_eq!(bit, model.get(w * 64 + b).copied().unwrap_or(false));
                }
            }
        }
    }
}

/// A strategy for random regexes (as strings) over {a, b}.
fn arb_regex() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("()".to_string())
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("{x}{y}")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x}|{y})")),
            inner.clone().prop_map(|x| format!("({x})*")),
            inner.clone().prop_map(|x| format!("({x})+")),
            inner.prop_map(|x| format!("({x})?")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parse → display → parse is language-preserving.
    #[test]
    fn regex_display_roundtrip(re in arb_regex(), word in arb_word()) {
        let r1 = Regex::parse(&re).unwrap();
        let r2 = Regex::parse(&r1.to_string()).unwrap();
        let mut a1 = Alphabet::ascii_lower(2);
        let mut a2 = Alphabet::ascii_lower(2);
        let n1 = r1.compile(&mut a1);
        let n2 = r2.compile(&mut a2);
        prop_assert_eq!(n1.accepts(&word), n2.accepts(&word));
    }

    /// DFA equivalence is reflexive through an independent construction.
    #[test]
    fn equivalence_reflexive(re in arb_regex()) {
        let mut a = Alphabet::ascii_lower(2);
        let n = Regex::compile_str(&re, &mut a).unwrap();
        let d1 = n.remove_epsilon().determinize(&[0, 1]);
        let d2 = n.reverse().reverse().remove_epsilon().determinize(&[0, 1]);
        prop_assert!(d1.equivalent(&d2));
    }

    /// Kleene round-trip: regex → NFA → regex (state elimination) → NFA
    /// preserves the language.
    #[test]
    fn nfa_to_regex_roundtrip(re in arb_regex()) {
        let alphabet = Alphabet::ascii_lower(2);
        let mut a1 = alphabet.clone();
        let n = Regex::compile_str(&re, &mut a1).unwrap();
        let back = ecrpq::automata::nfa_to_regex(&n, &alphabet);
        let mut a2 = alphabet.clone();
        let n2 = back.compile(&mut a2);
        let d1 = n.remove_epsilon().determinize(&[0, 1]);
        let d2 = n2.remove_epsilon().determinize(&[0, 1]);
        prop_assert!(d1.equivalent(&d2), "{re} vs {back}");
    }

    /// State elimination also round-trips arbitrary NFAs.
    #[test]
    fn nfa_to_regex_roundtrip_random_nfa(nfa in arb_nfa()) {
        let alphabet = Alphabet::ascii_lower(2);
        let back = ecrpq::automata::nfa_to_regex(&nfa, &alphabet);
        let mut a2 = alphabet.clone();
        let n2 = back.compile(&mut a2);
        let d1 = nfa.remove_epsilon().determinize(&[0, 1]);
        let d2 = n2.remove_epsilon().determinize(&[0, 1]);
        prop_assert!(d1.equivalent(&d2));
    }
}
