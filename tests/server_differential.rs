//! Differential testing of the query service: answers served from a
//! cached [`PreparedPlan`] must be bit-identical to a fresh
//! `planner::answers` evaluation of the same text — across layouts,
//! thread counts and repeated executions — and per-execution governor
//! state (stop flags, deadlines) must never leak between runs or between
//! sessions sharing the plan cache.

use ecrpq::eval::planner;
use ecrpq::eval::{
    EvalOptions, Layout, QueryService, ResourceBudget, ServerError, SessionBudget, Strategy,
};
use ecrpq::graph::GraphDb;
use ecrpq::query::{parse_query, RelationRegistry};
use ecrpq::workloads::random_db;
use std::collections::BTreeSet;
use std::time::Duration;

/// The differential corpus: finite path languages keep every governed
/// search small at the sizes below, while the query shapes cover the
/// strategy space — tree-decomposition, direct product (the eq-length
/// triple), and the acyclic planner path once the node count pushes the
/// 2-variable queries past the tuple budget.
const CORPUS: &[&str] = &[
    "q(x, y) :- x -[p]-> y, p in a*b",
    "q(x, y) :- x -[p]-> y, p in (a|b)(a|b)a",
    "q(x, z) :- x -[p1]-> y, x -[p2]-> y, y -[r]-> z, eq_len(p1, p2), p1 in b|(a|b)(a|b)b, r in b",
    "q(x) :- x -[p0]-> y, x -[p1]-> y, x -[p2]-> y, eq_len(p0, p1, p2), \
     p0 in a|aaa, p1 in a|aab, p2 in a|ab(a|b)",
];

/// A generous but finite budget: enough for every corpus query to run to
/// completion at the sizes used here, while keeping the request on the
/// governed code path (an unlimited request budget would be replaced by
/// the plan's regime default inside the service).
fn generous() -> ResourceBudget {
    ResourceBudget::unlimited().with_max_configurations(2_000_000_000)
}

/// Reference evaluation: parse against the database's alphabet and run
/// the ungoverned planner entry point.
fn reference(db: &GraphDb, text: &str) -> BTreeSet<Vec<ecrpq::graph::NodeId>> {
    let mut alphabet = db.alphabet().clone();
    let registry = RelationRegistry::new();
    let q = parse_query(text, &mut alphabet, &registry).expect("corpus query parses");
    planner::answers(db, &q)
}

/// Cached-plan answers are bit-identical to the fresh planner evaluation
/// across Flat/BitParallel layouts, 1/2/4 threads, and repeated
/// executions of the same interned plan.
#[test]
fn cached_plan_matches_planner_across_layouts_and_threads() {
    let db = random_db(60, 1.5, 2, 0xD1FF);
    db.freeze();
    let service = QueryService::new(db.clone());
    for text in CORPUS {
        let expected = reference(&db, text);
        let mut first = true;
        for layout in [Layout::Flat, Layout::BitParallel] {
            for threads in [1usize, 2, 4] {
                let opts = EvalOptions::with_threads(threads)
                    .with_layout(layout)
                    .with_budget(generous());
                for round in 0..3 {
                    let r = service.execute(text, &opts).expect("request admitted");
                    assert!(
                        r.termination.is_complete(),
                        "{text} {layout:?} t={threads} round {round}: {:?}",
                        r.termination
                    );
                    assert_eq!(
                        r.answers, expected,
                        "{text} {layout:?} t={threads} round {round}"
                    );
                    assert_eq!(r.cached, !first, "{text}: only the first request misses");
                    first = false;
                }
            }
        }
    }
    let stats = service.stats();
    assert_eq!(stats.requests, (CORPUS.len() * 2 * 3 * 3) as u64);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.requests);
    assert_eq!(stats.cache_misses, CORPUS.len() as u64);
    assert_eq!(stats.cached_plans, CORPUS.len());
}

/// Past the planner's tuple budget the 2-variable queries leave the
/// tree-decomposition path, so the cached plans pin the large-database
/// strategies — and their answers still match the planner bit for bit.
#[test]
fn cached_plan_matches_planner_past_the_tuple_budget() {
    let db = random_db(120, 1.5, 2, 0xBEEF);
    db.freeze();
    let service = QueryService::new(db.clone());
    let mut strategies = BTreeSet::new();
    for text in CORPUS {
        let expected = reference(&db, text);
        let opts = EvalOptions::sequential().with_budget(generous());
        for _ in 0..2 {
            let r = service.execute(text, &opts).expect("request admitted");
            assert!(r.termination.is_complete(), "{text}: {:?}", r.termination);
            assert_eq!(r.answers, expected, "{text}");
            strategies.insert(format!("{:?}", r.plan.strategy));
        }
    }
    // the corpus must actually exercise the large-database strategies at
    // this size — a regression to CqTreedec-for-everything would hollow
    // out this suite
    assert!(
        strategies.contains("DirectProduct"),
        "no corpus query routed to DirectProduct at n=120: {strategies:?}"
    );
}

/// The central PR-9 regression: a governed run that trips its stop flag
/// or expires its deadline must not poison the cached plan — the next
/// execution of the *same* interned plan constructs fresh governor state
/// and runs to completion.
#[test]
fn tripped_governor_state_does_not_leak_into_cached_plan() {
    let db = random_db(60, 1.5, 2, 0xD1FF);
    db.freeze();
    let service = QueryService::new(db.clone());
    let text = CORPUS[3]; // the eq-length triple does real search work
    let expected = reference(&db, text);

    // prime the cache with a complete run
    let clean = EvalOptions::sequential().with_budget(generous());
    let r = service.execute(text, &clean).expect("prime");
    assert!(r.termination.is_complete());
    assert_eq!(r.answers, expected);

    // trip the configuration budget on the cached plan
    let tight = EvalOptions::sequential()
        .with_budget(ResourceBudget::unlimited().with_max_configurations(1));
    let r = service.execute(text, &tight).expect("admitted");
    assert!(r.cached, "second request must hit the cache");
    assert!(
        !r.termination.is_complete(),
        "a 1-configuration budget cannot complete the triple"
    );

    // expire a deadline on the cached plan
    let expired = EvalOptions::sequential()
        .with_budget(ResourceBudget::unlimited().with_deadline(Duration::ZERO));
    let r = service.execute(text, &expired).expect("admitted");
    assert!(
        !r.termination.is_complete(),
        "a zero deadline cannot complete"
    );

    // the same cached plan, governed afresh, completes with full answers —
    // repeatedly, so no run inherits the previous run's tripped state
    for round in 0..3 {
        let r = service.execute(text, &clean).expect("admitted");
        assert!(r.cached);
        assert!(
            r.termination.is_complete(),
            "round {round} after tripped runs: {:?}",
            r.termination
        );
        assert_eq!(r.answers, expected, "round {round}");
    }
}

/// Concurrent sessions over one shared service: a work-capped session is
/// eventually refused at admission with its pool at exactly zero, while
/// unmetered sessions running concurrently stay complete and bit-identical
/// to the planner — session budgets never bleed across sessions, and the
/// capped session's tripped governors never poison the shared plans.
#[test]
fn concurrent_sessions_respect_budgets_without_cross_session_bleed() {
    let db = random_db(60, 1.5, 2, 0xD1FF);
    db.freeze();
    let service = QueryService::new(db.clone());
    let expected: Vec<_> = CORPUS.iter().map(|t| reference(&db, t)).collect();
    let opts = EvalOptions::sequential().with_budget(generous());

    const SESSIONS: usize = 3;
    const RUNS: usize = 4;
    let capped = service.session(SessionBudget::unlimited().with_max_total_configurations(50));
    std::thread::scope(|s| {
        for worker in 0..SESSIONS {
            let (service, opts, expected) = (&service, &opts, &expected);
            s.spawn(move || {
                let session = service.session(SessionBudget::unlimited());
                for round in 0..RUNS {
                    for (i, text) in CORPUS.iter().enumerate() {
                        let r = session.execute(text, opts).expect("unmetered admission");
                        assert!(
                            r.termination.is_complete(),
                            "session {worker} round {round} {text}: {:?}",
                            r.termination
                        );
                        assert_eq!(r.answers, expected[i], "session {worker} {text}");
                    }
                }
                assert_eq!(session.executed(), (RUNS * CORPUS.len()) as u64);
                assert_eq!(session.remaining_configurations(), None);
            });
        }
        s.spawn(|| {
            // drain the capped session's pool on the most expensive query;
            // every run is admission-checked, charged with metered work,
            // and the pool must land on exactly zero before refusal
            let text = CORPUS[3];
            let mut refused = false;
            for _ in 0..64 {
                match capped.execute(text, &opts) {
                    Ok(r) => assert!(r.stats.configurations > 0, "work must be metered"),
                    Err(ServerError::SessionExhausted) => {
                        refused = true;
                        break;
                    }
                    Err(e) => panic!("unexpected refusal: {e}"),
                }
            }
            assert!(refused, "a 50-configuration pool must exhaust");
            assert_eq!(capped.remaining_configurations(), Some(0));
        });
    });

    // the shared cache served every session from one set of interned
    // plans, and the exhausted session left them fully usable
    assert_eq!(service.stats().cached_plans, CORPUS.len());
    let after = service
        .execute(CORPUS[3], &opts)
        .expect("service-level request after session exhaustion");
    assert!(after.cached);
    assert!(after.termination.is_complete());
    assert_eq!(after.answers, expected[3]);
}

/// `Strategy` routing sanity for the small database: the eq-length triple
/// is the direct-product representative there, and its plan reports the
/// PSPACE budget regime (three tracks in one synchronous component).
#[test]
fn small_db_plans_report_strategy_and_regime() {
    let db = random_db(60, 1.5, 2, 0xD1FF);
    db.freeze();
    let service = QueryService::new(db.clone());
    let (plan, _) = service.prepare(CORPUS[3]).expect("triple prepares");
    assert!(matches!(plan.strategy, Strategy::DirectProduct));
    assert_eq!(format!("{:?}", plan.combined), "PspaceComplete");
}
