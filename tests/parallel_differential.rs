//! Differential testing of the parallel engine: at every thread count the
//! engine must return answer sets bit-identical to the sequential
//! evaluators, on randomized graphs and queries, and the merged worker
//! counters must account for exactly the sequential amount of feasibility
//! work.

use ecrpq::eval::cq_eval::{
    answers_cq as answers_cq_seq, answers_cq_treedec as answers_cq_treedec_seq,
};
use ecrpq::eval::product::answers_product as answers_product_seq;
use ecrpq::eval::{ecrpq_to_cq, engine, EvalOptions, PreparedQuery};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{random_db, random_ecrpq, RandomQueryParams};
use proptest::prelude::*;

fn params() -> RandomQueryParams {
    RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_product_answers_match_sequential(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(5, 1.6, 2, seed.wrapping_mul(31).wrapping_add(1));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let seq = answers_product_seq(&db, &prepared);
        for threads in [1usize, 2, 4, 8] {
            let par = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(threads));
            prop_assert_eq!(&par, &seq, "threads={} seed={}", threads, seed);
            let par_bool = engine::eval_product(&db, &prepared, &EvalOptions::with_threads(threads));
            prop_assert_eq!(par_bool, !seq.is_empty(), "boolean threads={} seed={}", threads, seed);
        }
    }

    #[test]
    fn parallel_cq_answers_match_sequential(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(7_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed.wrapping_mul(17).wrapping_add(3));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        let seq = answers_cq_seq(&rdb, &cq);
        let seq_td = answers_cq_treedec_seq(&rdb, &cq);
        for threads in [2usize, 4] {
            let opts = EvalOptions::with_threads(threads);
            prop_assert_eq!(
                &engine::answers_cq(&rdb, &cq, &opts),
                &seq,
                "answers_cq threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                &engine::answers_cq_treedec(&rdb, &cq, &opts),
                &seq_td,
                "answers_cq_treedec threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                engine::eval_cq(&rdb, &cq, &opts),
                !seq.is_empty(),
                "eval_cq threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                engine::eval_cq_treedec(&rdb, &cq, &opts),
                !seq_td.is_empty(),
                "eval_cq_treedec threads={} seed={}", threads, seed
            );
        }
    }
}

/// The feasibility-work invariant: enumeration asks the same total number
/// of (atom, endpoints) questions regardless of how the search space is
/// partitioned, so merged `checks + cache_hits` (and `assignments`) match
/// the sequential counters exactly. Only the hit/miss split may shift,
/// because each worker warms its own memo.
#[test]
fn merged_stats_equal_sequential_totals() {
    let mut covered = 0;
    for seed in 0..12u64 {
        let mut q = random_ecrpq(&params(), seed + 40_000);
        let all: Vec<NodeVar> = (0..q.num_node_vars() as u32).map(NodeVar).collect();
        q.set_free(&all);
        let db = random_db(5, 1.8, 2, seed * 13 + 5);
        let prepared = PreparedQuery::build(&q).unwrap();
        let (seq_ans, seq) =
            engine::answers_product_with_stats(&db, &prepared, &EvalOptions::sequential());
        if seq.checks + seq.cache_hits == 0 {
            continue; // nothing feasible to measure on this instance
        }
        covered += 1;
        for threads in [2usize, 4] {
            let (ans, merged) = engine::answers_product_with_stats(
                &db,
                &prepared,
                &EvalOptions::with_threads(threads),
            );
            assert_eq!(ans, seq_ans, "seed {seed} threads {threads}");
            assert_eq!(
                merged.checks + merged.cache_hits,
                seq.checks + seq.cache_hits,
                "seed {seed} threads {threads}: feasibility questions"
            );
            assert_eq!(
                merged.assignments, seq.assignments,
                "seed {seed} threads {threads}: assignments"
            );
        }
    }
    assert!(
        covered >= 5,
        "too few instances with feasibility work ({covered})"
    );
}

/// Thread counts beyond any reasonable core count, odd counts, and
/// auto-detection all preserve the answer set.
#[test]
fn extreme_thread_counts() {
    let mut q = random_ecrpq(&params(), 123);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(6, 1.7, 2, 456);
    let prepared = PreparedQuery::build(&q).unwrap();
    let seq = answers_product_seq(&db, &prepared);
    for threads in [3usize, 5, 16, 64, 0] {
        let par = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(threads));
        assert_eq!(par, seq, "threads={threads}");
    }
}
