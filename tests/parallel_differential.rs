//! Differential testing of the parallel engine: at every thread count the
//! engine must return answer sets bit-identical to the sequential
//! evaluators, on randomized graphs and queries, and the merged worker
//! counters must account for exactly the sequential amount of feasibility
//! work.

use ecrpq::eval::cq_eval::{
    answers_cq as answers_cq_seq, answers_cq_treedec as answers_cq_treedec_seq,
};
use ecrpq::eval::product::answers_product as answers_product_seq;
use ecrpq::eval::{ecrpq_to_cq, engine, EvalOptions, PreparedQuery, ResourceBudget, Termination};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{random_db, random_ecrpq, RandomQueryParams};
use proptest::prelude::*;

fn params() -> RandomQueryParams {
    RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_product_answers_match_sequential(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(5, 1.6, 2, seed.wrapping_mul(31).wrapping_add(1));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let seq = answers_product_seq(&db, &prepared);
        for threads in [1usize, 2, 4, 8] {
            let par = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(threads));
            prop_assert_eq!(&par, &seq, "threads={} seed={}", threads, seed);
            let par_bool = engine::eval_product(&db, &prepared, &EvalOptions::with_threads(threads));
            prop_assert_eq!(par_bool, !seq.is_empty(), "boolean threads={} seed={}", threads, seed);
        }
    }

    #[test]
    fn parallel_cq_answers_match_sequential(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(7_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed.wrapping_mul(17).wrapping_add(3));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        let seq = answers_cq_seq(&rdb, &cq);
        let seq_td = answers_cq_treedec_seq(&rdb, &cq);
        for threads in [2usize, 4] {
            let opts = EvalOptions::with_threads(threads);
            prop_assert_eq!(
                &engine::answers_cq(&rdb, &cq, &opts),
                &seq,
                "answers_cq threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                &engine::answers_cq_treedec(&rdb, &cq, &opts),
                &seq_td,
                "answers_cq_treedec threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                engine::eval_cq(&rdb, &cq, &opts),
                !seq.is_empty(),
                "eval_cq threads={} seed={}", threads, seed
            );
            prop_assert_eq!(
                engine::eval_cq_treedec(&rdb, &cq, &opts),
                !seq_td.is_empty(),
                "eval_cq_treedec threads={} seed={}", threads, seed
            );
        }
    }

    /// The governed-evaluation soundness contract, differentially against
    /// the ungoverned engine at several thread counts: budgeted answers
    /// are always a **subset** of the unbudgeted set, a run that reports
    /// [`Termination::Complete`] is **bit-identical**, and an unlimited
    /// budget always completes bit-identically (the governed path must not
    /// perturb the search, only truncate it).
    #[test]
    fn budgeted_answers_are_a_sound_subset(seed in 0..100_000u64) {
        let mut q = random_ecrpq(&params(), seed.wrapping_add(63_000));
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(5, 1.7, 2, seed.wrapping_mul(37).wrapping_add(9));
        let prepared = PreparedQuery::build(&q).map_err(TestCaseError::fail)?;
        let full = answers_product_seq(&db, &prepared);
        // a spread of configuration caps: from certainly-truncating to
        // certainly-complete, exercised at every thread count
        for threads in [1usize, 2, 4] {
            for cap in [1u64, 256, 16_384, u64::MAX / 4] {
                let opts = EvalOptions::with_threads(threads)
                    .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
                let o = engine::answers_product_governed(&db, &prepared, &opts);
                prop_assert!(
                    o.answers.is_subset(&full),
                    "threads={} cap={} seed={}: subset violated", threads, cap, seed
                );
                if o.termination == Termination::Complete {
                    prop_assert_eq!(
                        &o.answers, &full,
                        "threads={} cap={} seed={}: Complete must be bit-identical",
                        threads, cap, seed
                    );
                }
            }
            // an unlimited budget through the governed path is Complete
            // and bit-identical by construction
            let opts = EvalOptions::with_threads(threads)
                .with_budget(ResourceBudget::unlimited());
            let o = engine::answers_product_governed(&db, &prepared, &opts);
            prop_assert_eq!(o.termination, Termination::Complete, "threads={}", threads);
            prop_assert_eq!(&o.answers, &full, "threads={} seed={}", threads, seed);
        }
        // the answer cap is sequential-exact: claimed before insertion, so
        // min(cap, total) answers come back and Complete ⇔ cap ≥ total
        let total = full.len() as u64;
        for cap in [1u64, total.max(1), total + 3] {
            let opts = EvalOptions::sequential()
                .with_budget(ResourceBudget::unlimited().with_max_answers(cap));
            let o = engine::answers_product_governed(&db, &prepared, &opts);
            prop_assert_eq!(
                o.answers.len() as u64,
                cap.min(total),
                "answer cap={} seed={}", cap, seed
            );
            prop_assert!(o.answers.is_subset(&full), "answer cap={} seed={}", cap, seed);
            prop_assert_eq!(
                o.termination == Termination::Complete,
                cap >= total,
                "answer cap={} seed={}", cap, seed
            );
        }
    }
}

/// The feasibility-work invariant: enumeration asks the same total number
/// of (atom, endpoints) questions regardless of how the search space is
/// partitioned, so merged `checks + cache_hits` (and `assignments`) match
/// the sequential counters exactly. Only the hit/miss split may shift,
/// because each worker warms its own memo.
#[test]
fn merged_stats_equal_sequential_totals() {
    let mut covered = 0;
    for seed in 0..12u64 {
        let mut q = random_ecrpq(&params(), seed + 40_000);
        let all: Vec<NodeVar> = (0..q.num_node_vars() as u32).map(NodeVar).collect();
        q.set_free(&all);
        let db = random_db(5, 1.8, 2, seed * 13 + 5);
        let prepared = PreparedQuery::build(&q).unwrap();
        let (seq_ans, seq) =
            engine::answers_product_with_stats(&db, &prepared, &EvalOptions::sequential());
        if seq.checks + seq.cache_hits == 0 {
            continue; // nothing feasible to measure on this instance
        }
        covered += 1;
        for threads in [2usize, 4] {
            let (ans, merged) = engine::answers_product_with_stats(
                &db,
                &prepared,
                &EvalOptions::with_threads(threads),
            );
            assert_eq!(ans, seq_ans, "seed {seed} threads {threads}");
            assert_eq!(
                merged.checks + merged.cache_hits,
                seq.checks + seq.cache_hits,
                "seed {seed} threads {threads}: feasibility questions"
            );
            assert_eq!(
                merged.assignments, seq.assignments,
                "seed {seed} threads {threads}: assignments"
            );
        }
    }
    assert!(
        covered >= 5,
        "too few instances with feasibility work ({covered})"
    );
}

/// Thread counts beyond any reasonable core count, odd counts, and
/// auto-detection all preserve the answer set.
#[test]
fn extreme_thread_counts() {
    let mut q = random_ecrpq(&params(), 123);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(6, 1.7, 2, 456);
    let prepared = PreparedQuery::build(&q).unwrap();
    let seq = answers_product_seq(&db, &prepared);
    for threads in [3usize, 5, 16, 64, 0] {
        let par = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(threads));
        assert_eq!(par, seq, "threads={threads}");
    }
}
