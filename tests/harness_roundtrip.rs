//! Harness spec round-trip and resumable-trial guarantees.
//!
//! Golden checks pin the parse of a committed spec (`experiments/e19.toml`)
//! and the canonical-serialization fixpoint every content-addressed cache
//! key depends on. The property tests drive whole `run_spec` cycles
//! through small budget-kind specs: a warm second run must execute zero
//! trials and reproduce the aggregate byte-for-byte, and a corrupted
//! per-trial file must be recovered (re-run), never trusted.

use ecrpq_bench::harness::{run_spec_path, RunOptions, Spec, SpecValue};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Repo-root path of a committed file (tests run from the package root).
fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// A scratch directory unique to this process + call site.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = repo_path("target/test-harness").join(format!("{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn golden_parse_of_committed_e19_spec() {
    let spec = Spec::load(&repo_path("experiments/e19.toml")).expect("committed spec parses");
    assert_eq!(spec.name, "e19");
    assert_eq!(spec.kind, "bitparallel");
    assert_eq!(spec.output, "BENCH_bitparallel.json");
    assert_eq!(spec.reps, 3);
    assert_eq!(
        spec.workload_str("generator"),
        Some("planted_power_law"),
        "workload generator"
    );
    assert_eq!(spec.workload_usize("nodes", 0), 1_000_000);
    assert_eq!(spec.workload_usize("sources", 0), 8);
    // matrix: threads varies slowest, layout fastest — 8 trials in the
    // committed row order (flat t1, bitparallel t1, flat t2, ...)
    let axes: Vec<&str> = spec.matrix.iter().map(|(a, _)| a.as_str()).collect();
    assert_eq!(axes, ["threads", "layout"]);
    let trials = spec.trials();
    assert_eq!(trials.len(), 8);
    assert_eq!(Spec::trial_key(&trials[0]), "threads-1_layout-flat");
    assert_eq!(Spec::trial_key(&trials[1]), "threads-1_layout-bitparallel");
    assert_eq!(Spec::trial_key(&trials[7]), "threads-8_layout-bitparallel");
    // smoke overrides shrink the workload and change the cache key
    let smoke = spec.apply_smoke();
    assert_eq!(smoke.workload_usize("nodes", 0), 20_000);
    assert!(smoke.smoke.is_empty(), "smoke table is consumed");
    assert_ne!(spec.hash(), smoke.hash(), "smoke runs cache separately");
}

#[test]
fn every_committed_spec_parses_and_canonicalizes() {
    for name in ["e15", "e17", "e18", "e19", "e20", "e21", "e22"] {
        let path = repo_path(&format!("experiments/{name}.toml"));
        let spec = Spec::load(&path).expect("spec parses");
        assert_eq!(spec.name, name);
        // serialize -> parse is the identity on the spec value, so the
        // content hash (and with it every cache key) survives a rewrite
        let reparsed = Spec::parse(&spec.to_toml()).expect("serialized spec reparses");
        assert_eq!(reparsed, spec, "{name} to_toml round-trip");
        assert_eq!(reparsed.hash(), spec.hash(), "{name} hash stable");
        assert_eq!(reparsed.canonical(), spec.canonical());
        assert!(!spec.trials().is_empty(), "{name} has trials");
    }
}

/// A tiny budget-kind spec: the trial runs the ungoverned search plus one
/// governed replay on a ~`nodes`-vertex graph, fast enough for proptest.
fn tiny_spec(dir: &Path, nodes: u64, seed: u64) -> PathBuf {
    let src = format!(
        "name = \"tiny\"\n\
         title = \"resume property\"\n\
         kind = \"budget\"\n\
         output = \"BENCH_tiny.json\"\n\
         \n\
         [workload]\n\
         generator = \"big_component_random\"\n\
         r = 2\n\
         labels = 2\n\
         nodes = {nodes}\n\
         avg_degree = 1.5\n\
         seed = {seed}\n\
         \n\
         [matrix]\n\
         budget = [\"0.5\", \"2.0\"]\n"
    );
    let path = dir.join("tiny.toml");
    std::fs::write(&path, src).expect("write tiny spec");
    path
}

/// Options pinning both the results dir and the aggregate inside `dir`.
fn opts_in(dir: &Path) -> RunOptions {
    RunOptions {
        smoke: false,
        results_dir: Some(dir.join("results")),
        out: Some(dir.join("aggregate.json")),
        quiet: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cold run executes everything; warm run executes nothing and the
    /// aggregate is byte-identical.
    #[test]
    fn warm_rerun_executes_zero_trials(nodes in 10u64..22, seed in 1u64..1000) {
        let dir = scratch_dir("warm");
        let spec_path = tiny_spec(&dir, nodes, seed);
        let opts = opts_in(&dir);
        let cold = run_spec_path(&spec_path, &opts).expect("cold run");
        prop_assert_eq!(cold.executed, cold.trials);
        prop_assert_eq!(cold.cached, 0);
        let cold_bytes = std::fs::read(dir.join("aggregate.json")).expect("aggregate");
        let warm = run_spec_path(&spec_path, &opts).expect("warm run");
        prop_assert_eq!(warm.executed, 0, "warm run must be fully cached");
        prop_assert_eq!(warm.recovered, 0);
        prop_assert_eq!(warm.cached, cold.trials);
        let warm_bytes = std::fs::read(dir.join("aggregate.json")).expect("aggregate");
        prop_assert_eq!(cold_bytes, warm_bytes, "aggregate must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupted per-trial file is detected and re-run; the aggregate
    /// still comes out byte-identical (full precision lives in the trial
    /// files, rounding only in aggregation — and the trial is
    /// deterministic).
    #[test]
    fn corrupted_trial_file_is_recovered(seed in 1u64..1000) {
        let dir = scratch_dir("corrupt");
        let spec_path = tiny_spec(&dir, 14, seed);
        let opts = opts_in(&dir);
        let cold = run_spec_path(&spec_path, &opts).expect("cold run");
        let cold_rows = {
            let text = std::fs::read_to_string(dir.join("aggregate.json")).expect("aggregate");
            ecrpq_bench::harness::json::parse(&text).expect("aggregate parses")
        };
        let victim = dir.join("results").join("budget-0.5.json");
        prop_assert!(victim.exists(), "trial file under its content key");
        std::fs::write(&victim, "{ not json").expect("corrupt the file");
        let rerun = run_spec_path(&spec_path, &opts).expect("rerun");
        prop_assert_eq!(rerun.recovered, 1, "the corrupted trial re-runs");
        prop_assert_eq!(rerun.cached, cold.trials - 1);
        prop_assert_eq!(rerun.executed, 0);
        // the recovered file is valid again and keyed to the same spec hash
        let healed = std::fs::read_to_string(&victim).expect("healed file");
        let envelope = ecrpq_bench::harness::json::parse(&healed).expect("valid JSON again");
        let expected_hash = Spec::load(&spec_path).expect("spec").hash();
        prop_assert_eq!(
            envelope.get("spec_hash").and_then(|h| h.as_str()),
            Some(expected_hash.as_str())
        );
        // non-timing aggregate content is reproduced exactly
        let rerun_rows = {
            let text = std::fs::read_to_string(dir.join("aggregate.json")).expect("aggregate");
            ecrpq_bench::harness::json::parse(&text).expect("aggregate parses")
        };
        for key in ["total_work", "full_answers", "nodes", "edges"] {
            prop_assert_eq!(cold_rows.get(key), rerun_rows.get(key), "{}", key);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A stale spec hash (edited spec, same trial keys) also invalidates
    /// the cache: changing the workload seed changes the content address,
    /// so no trial is reused across spec edits.
    #[test]
    fn edited_spec_invalidates_cached_trials(seed in 1u64..500) {
        let dir = scratch_dir("stale");
        let opts = opts_in(&dir);
        let first = run_spec_path(&tiny_spec(&dir, 12, seed), &opts).expect("first run");
        prop_assert_eq!(first.executed, first.trials);
        // same trial keys, different spec content -> recovered, not cached
        let second = run_spec_path(&tiny_spec(&dir, 12, seed + 1000), &opts).expect("second run");
        prop_assert_eq!(second.cached, 0, "stale results must not be trusted");
        prop_assert_eq!(second.recovered, second.trials);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn trial_params_render_stable_keys() {
    let params = vec![
        ("threads".to_string(), SpecValue::Int(8)),
        ("layout".to_string(), SpecValue::Str("flat".to_string())),
    ];
    assert_eq!(Spec::trial_key(&params), "threads-8_layout-flat");
    assert_eq!(Spec::trial_key(&Vec::new()), "single");
}
