//! Differential testing for the semantic regime minimizer.
//!
//! Every rewrite the minimizer applies is verified internally by a
//! two-way containment check, but this suite re-checks the end result
//! from the outside: the minimized query must be *answer-identical* to
//! the original on concrete databases, under every layout of the product
//! search and at 1/2/4 threads, and both must agree with the PR-5
//! brute-force oracle. A final regression pins the `analyze --fix`
//! contract: `fix_source` is idempotent on the committed query corpus.
//!
//! Seeds are offset by `ECRPQ_TEST_SEED` (see `workloads::env_seed`) and
//! printed in every assertion message.

use ecrpq::analyze::{fix_source, minimize};
use ecrpq::eval::{engine, planner, EvalOptions, Layout, PreparedQuery};
use ecrpq::graph::NodeId;
use ecrpq::query::{parse_query, Ecrpq, NodeVar, RelationRegistry};
use ecrpq::workloads::{
    env_seed, oracle_answers, planted_regime_shift_instance, random_db, random_ecrpq,
    RandomQueryParams,
};
use std::collections::BTreeSet;

/// Walk-length bound for the oracle (same calibration as the other
/// oracle suites: minimal witnesses on 4-node graphs fit comfortably).
const MAX_LEN: usize = 8;

/// Queries the minimizer provably rewrites (the committed corpus pair
/// plus smaller variants of each rewrite family), so the differential
/// check below is guaranteed to exercise real rewrite steps instead of
/// silently comparing a query against itself.
const SHRINKABLE: &[&str] = &[
    // equality-contraction family (parallel eq-chained paths)
    "q(x, y) :- x -[p]-> y, x -[r]-> y, eq(p, r)",
    "q(x, y) :- x -[p]-> y, x -[r]-> y, x -[s]-> y, p in (a|b)*a, eq(p, r), eq(r, s)",
    // reachability-elision family (universal chords implied by a chain)
    "q(x, z) :- x -[p]-> y, y -[r]-> z, x -[c]-> z, c in (a|b)*",
    "q(w, z) :- w -[p1]-> x, x -[p2]-> y, y -[p3]-> z, w -[c1]-> y, x -[c2]-> z, \
     w -[c3]-> z, p1 in a*b, c1 in (a|b)*, c2 in (a|b)*, c3 in (a|b)*",
    // parallel-atom merge family (two regexes on the same endpoints)
    "q(x, y) :- x -[p]-> y, x -[r]-> y, p in a*b, r in (a|b)*b, eq(p, r)",
];

/// Evaluate `q` with the product search, bypassing the planner's own
/// minimization pass, so original-vs-minimized comparisons are between
/// two genuinely different pipelines over two genuinely different ASTs.
fn product_answers(
    db: &ecrpq::graph::GraphDb,
    q: &Ecrpq,
    layout: Layout,
    threads: usize,
) -> BTreeSet<Vec<NodeId>> {
    let prepared = PreparedQuery::build(q).unwrap_or_else(|e| panic!("prepare: {e}"));
    let opts = EvalOptions::with_threads(threads).with_layout(layout);
    engine::answers_product(db, &prepared, &opts)
}

#[test]
fn minimized_queries_are_answer_identical_on_shrinkable_corpus() {
    let base = env_seed(0);
    let mut rewrites = 0usize;
    for (i, text) in SHRINKABLE.iter().enumerate() {
        for case in 0..4u64 {
            let seed = base + case;
            let db = random_db(4, 1.6, 2, seed * 31 + i as u64);
            let mut alphabet = db.alphabet().clone();
            let q = parse_query(text, &mut alphabet, &RelationRegistry::new())
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            let m = minimize(&q);
            assert!(
                !m.steps.is_empty(),
                "query {i} is in the shrinkable corpus but no rewrite fired"
            );
            rewrites += m.steps.len();
            let truth = oracle_answers(&db, &q, MAX_LEN);
            let exact = oracle_answers(&db, &q, MAX_LEN - 2) == truth;
            for layout in [Layout::Flat, Layout::BitParallel] {
                for threads in [1usize, 2, 4] {
                    let orig = product_answers(&db, &q, layout, threads);
                    let mini = product_answers(&db, &m.query, layout, threads);
                    assert_eq!(
                        orig, mini,
                        "query {i}, seed {seed}, {layout:?}, {threads} thread(s): \
                         minimized query changed the answer set"
                    );
                    assert!(
                        truth.is_subset(&mini),
                        "query {i}, seed {seed}: minimized query missed oracle answers"
                    );
                    if exact {
                        assert_eq!(
                            mini, truth,
                            "query {i}, seed {seed}: minimized query reported extra answers"
                        );
                    }
                }
            }
        }
    }
    assert!(rewrites >= SHRINKABLE.len() * 4, "rewrite count rotted");
}

#[test]
fn minimized_random_queries_are_answer_identical() {
    let base = env_seed(0);
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 2,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    const CASES: u64 = 25;
    let mut fired = 0usize;
    for case in 0..CASES {
        let seed = base + case;
        let mut q = random_ecrpq(&params, seed + 12000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let m = minimize(&q);
        if m.steps.is_empty() {
            continue;
        }
        fired += 1;
        let db = random_db(4, 1.5, 2, seed * 29 + 7);
        let truth = oracle_answers(&db, &q, MAX_LEN);
        let exact = oracle_answers(&db, &q, MAX_LEN - 2) == truth;
        let orig = product_answers(&db, &q, Layout::Flat, 1);
        for layout in [Layout::Flat, Layout::BitParallel] {
            for threads in [1usize, 2, 4] {
                let mini = product_answers(&db, &m.query, layout, threads);
                assert_eq!(
                    orig, mini,
                    "seed {seed}, {layout:?}, {threads} thread(s): \
                     minimized random query changed the answer set"
                );
                assert!(
                    truth.is_subset(&mini),
                    "seed {seed}: minimized query missed oracle answers"
                );
                if exact {
                    assert_eq!(mini, truth, "seed {seed}: extra answers");
                }
            }
        }
    }
    // The random workload includes eq atoms and broad regexes, so some
    // fraction must keep triggering rewrites or the test is vacuous.
    assert!(
        fired >= 2,
        "minimizer fired on only {fired}/{CASES} random queries (base seed {base}) — \
         workload drifted away from the rewrite families"
    );
}

/// The planner runs the minimizer internally; its answers must equal the
/// un-minimized pipeline on the planted NP→PTIME instance end to end.
#[test]
fn planner_minimization_is_transparent_on_planted_instance() {
    let (db, q, expected) = planted_regime_shift_instance(12, env_seed(0) + 2022);
    let m = minimize(&q);
    assert_eq!(m.steps.len(), 3, "planted instance must elide all 3 chords");
    assert_ne!(m.before, m.after, "measures must drop");
    assert_eq!(planner::answers(&db, &q), expected, "planner (minimizing)");
    assert_eq!(
        planner::answers_without_minimize(&db, &q),
        expected,
        "planner (baseline, no minimization)"
    );
}

/// `analyze --fix` must be idempotent: one pass over the committed query
/// corpus applies every W006 suggestion, a second pass applies none and
/// leaves the text byte-identical.
#[test]
fn fix_source_is_idempotent_on_committed_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("queries");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ecrpq"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "query corpus went missing");
    let mut applied_total = 0usize;
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
        let (once, n1) = fix_source(&text);
        let (twice, n2) = fix_source(&once);
        assert_eq!(
            n2,
            0,
            "{}: second --fix pass still applied {n2} fix(es)",
            path.display()
        );
        assert_eq!(
            twice,
            once,
            "{}: second --fix pass changed the text",
            path.display()
        );
        applied_total += n1;
    }
    assert!(
        applied_total >= 2,
        "corpus no longer contains fixable queries (applied {applied_total})"
    );
}
