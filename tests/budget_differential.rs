//! Differential testing of resource-governed evaluation.
//!
//! Soundness contract under test: a budgeted run returns a **subset** of
//! the unbudgeted answers (truncation loses answers, never invents them);
//! a run that reports [`Termination::Complete`] is **bit-identical** to
//! the ungoverned evaluator; and a wall-clock deadline is honoured to
//! within the cooperative check interval — less than 2× the deadline —
//! at every thread count.
//!
//! The deadline test runs on a PSPACE-regime workload
//! ([`big_component_query`]: one merged relation component with `r` path
//! variables, so `cc_vertex = r` drives the product through a
//! `|Q| · |V|^r` configuration space) sized so that full enumeration
//! takes orders of magnitude longer than the deadline — truncation
//! genuinely happens, and partial answers genuinely exist.

use ecrpq::eval::{engine, EvalOptions, PreparedQuery, ResourceBudget, Termination};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{big_component_query, random_db};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The PSPACE-regime workload: `r` equal-length paths between free `x`
/// and `y` on a random graph with `n` nodes.
fn workload(r: usize, n: usize) -> (ecrpq::graph::GraphDb, ecrpq::query::Ecrpq) {
    let mut q = big_component_query(r, 2);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(n, 2.0, 2, 97);
    (db, q)
}

/// The acceptance test: a 50 ms deadline on a PSPACE workload whose full
/// enumeration takes seconds returns `DeadlineExceeded` with non-empty
/// partial answers that are a subset of the full set, and never
/// overshoots 2× the deadline — at any thread count.
#[test]
fn deadline_yields_partial_answers_without_overshoot() {
    let (db, q) = workload(3, 30);
    let prepared = PreparedQuery::build(&q).expect("valid");
    let full = engine::answers_product(&db, &prepared, &EvalOptions::with_threads(0));
    assert!(full.len() > 100, "workload must have many answers");
    let deadline = Duration::from_millis(50);
    for threads in [1usize, 2, 4, 8] {
        let opts = EvalOptions::with_threads(threads)
            .with_budget(ResourceBudget::unlimited().with_deadline(deadline));
        let start = Instant::now();
        let outcome = engine::answers_product_governed(&db, &prepared, &opts);
        let elapsed = start.elapsed();
        assert_eq!(
            outcome.termination,
            Termination::DeadlineExceeded,
            "threads={threads}"
        );
        assert!(
            !outcome.answers.is_empty(),
            "threads={threads}: no partial answers within {deadline:?}"
        );
        assert!(
            outcome.answers.is_subset(&full),
            "threads={threads}: partial answers must be a subset"
        );
        assert!(
            elapsed < 2 * deadline,
            "threads={threads}: overshot the deadline: {elapsed:?}"
        );
        assert!(outcome.stats.budget_checks > 0, "threads={threads}");
    }
}

/// A configuration budget truncates the same way: subset answers, an
/// explicit `BudgetExhausted` termination while the cap binds, and —
/// because the sequential search is deterministic — monotonically more
/// answers as the cap grows, converging to the complete set.
#[test]
fn configuration_budget_sweep_recovers_answers() {
    let (db, q) = workload(3, 14);
    let prepared = PreparedQuery::build(&q).expect("valid");
    let unbudgeted = engine::answers_product_governed(&db, &prepared, &EvalOptions::sequential());
    assert_eq!(unbudgeted.termination, Termination::Complete);
    let full = unbudgeted.answers;
    assert!(full.len() >= 10, "need a meaningful answer set");
    let total_work = unbudgeted.stats.configurations.max(1);
    let mut last_len = 0usize;
    let mut saw_exhausted = false;
    for fraction in [0.01f64, 0.1, 0.5, 1.0] {
        let cap = ((total_work as f64 * fraction) as u64).max(1);
        let opts = EvalOptions::sequential()
            .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
        let outcome = engine::answers_product_governed(&db, &prepared, &opts);
        assert!(
            outcome.answers.is_subset(&full),
            "fraction={fraction}: subset violated"
        );
        match outcome.termination {
            Termination::Complete => assert_eq!(outcome.answers, full, "fraction={fraction}"),
            _ => saw_exhausted = true,
        }
        // more budget never recovers fewer answers on the same
        // deterministic sequential search
        assert!(
            outcome.answers.len() >= last_len,
            "fraction={fraction}: answers shrank"
        );
        last_len = outcome.answers.len();
    }
    assert!(saw_exhausted, "the small fractions must actually truncate");
    // an effectively unbounded cap completes and matches bit-for-bit
    let opts = EvalOptions::sequential()
        .with_budget(ResourceBudget::unlimited().with_max_configurations(u64::MAX / 4));
    let outcome = engine::answers_product_governed(&db, &prepared, &opts);
    assert_eq!(outcome.termination, Termination::Complete);
    assert_eq!(outcome.answers, full);
}

/// Sequential answer caps are exact: a cap of `k` returns `min(k, total)`
/// answers, and the run is `Complete` iff the cap was not the binding
/// constraint — so `Complete` ⇔ bit-identical answers.
#[test]
fn answer_cap_is_exact_sequentially() {
    let (db, q) = workload(3, 14);
    let prepared = PreparedQuery::build(&q).expect("valid");
    let full = engine::answers_product(&db, &prepared, &EvalOptions::sequential());
    let total = full.len() as u64;
    assert!(total >= 2, "need a few answers to cap");
    for cap in [1, total / 2, total, total + 7] {
        let opts = EvalOptions::sequential()
            .with_budget(ResourceBudget::unlimited().with_max_answers(cap));
        let outcome = engine::answers_product_governed(&db, &prepared, &opts);
        assert_eq!(
            outcome.answers.len() as u64,
            cap.min(total),
            "cap={cap}: wrong answer count"
        );
        assert!(outcome.answers.is_subset(&full), "cap={cap}");
        let complete = outcome.termination == Termination::Complete;
        assert_eq!(
            complete,
            cap >= total,
            "cap={cap}: Complete iff cap covers all answers"
        );
        if complete {
            assert_eq!(outcome.answers, full, "cap={cap}");
        }
    }
}

/// Regression (answer-cap overshoot): the *ungoverned* `answers_*` entry
/// points route a `max_answers` budget through the streaming enumerator,
/// so the search terminates at the cap instead of materializing the full
/// answer set and truncating. The pin: with every node variable free a
/// satisfying assignment is an answer, so the assignment counter must
/// stop exactly at the cap — on a database of any size.
#[test]
fn ungoverned_answer_cap_stops_the_search() {
    let cap = 3u64;
    let opts =
        EvalOptions::sequential().with_budget(ResourceBudget::unlimited().with_max_answers(cap));
    let mut at_cap = Vec::new();
    for n in [20usize, 40] {
        let (db, q) = workload(3, n);
        let prepared = PreparedQuery::build(&q).expect("valid");
        let (full, full_stats) =
            engine::answers_product_with_stats(&db, &prepared, &EvalOptions::sequential());
        assert!(full.len() as u64 > 3 * cap, "n={n}: need answers to spare");
        let (capped, capped_stats) = engine::answers_product_with_stats(&db, &prepared, &opts);
        assert_eq!(capped.len() as u64, cap, "n={n}: cap not exact");
        assert!(capped.is_subset(&full), "n={n}");
        assert!(
            capped_stats.assignments < full_stats.assignments,
            "n={n}: capped search did all {} assignments — the cap did not stop it",
            full_stats.assignments
        );
        at_cap.push(capped_stats.assignments);
    }
    // doubling the database must not grow the satisfying-assignment work:
    // the streaming search stops right at the cap-th distinct tuple (the
    // one-past-cap assignment is the claim that trips the governor)
    assert_eq!(
        at_cap[0], at_cap[1],
        "assignments after the cap grew with the database"
    );
    assert!(at_cap[0] <= cap + 1, "assignments ran past the cap");
}

/// Boolean search under governance: `true` is definitive even when the
/// budget is tiny, and a truncated `false` is reported as such.
#[test]
fn boolean_governed_is_sound() {
    let (db, q) = workload(3, 14);
    let prepared = PreparedQuery::build(&q).expect("valid");
    assert!(ecrpq::eval::product::eval_product(&db, &prepared));
    // generous budget: finds the answer, Complete
    let opts = EvalOptions::sequential()
        .with_budget(ResourceBudget::unlimited().with_deadline(Duration::from_secs(30)));
    let outcome = engine::eval_product_governed(&db, &prepared, &opts);
    assert!(outcome.answers);
    assert_eq!(outcome.termination, Termination::Complete);
    // zero deadline: either it found a witness before the first
    // checkpoint (true, definitive) or it reports DeadlineExceeded and
    // claims nothing
    let opts = EvalOptions::with_threads(4)
        .with_budget(ResourceBudget::unlimited().with_deadline(Duration::ZERO));
    let outcome = engine::eval_product_governed(&db, &prepared, &opts);
    if !outcome.answers {
        assert_eq!(outcome.termination, Termination::DeadlineExceeded);
    }
}

/// The governed planner honours an explicit budget and falls back to the
/// regime default otherwise; Complete runs match the ungoverned planner.
#[test]
fn planner_governed_matches_ungoverned_when_complete() {
    use ecrpq::eval::planner;
    let (db, q) = workload(3, 20);
    let full = planner::answers(&db, &q);
    // explicit generous budget → Complete, identical
    let opts = EvalOptions::sequential()
        .with_budget(ResourceBudget::unlimited().with_max_configurations(u64::MAX / 4));
    let outcome = planner::answers_governed(&db, &q, &opts);
    assert_eq!(outcome.termination, Termination::Complete);
    assert_eq!(outcome.answers, full);
    // unlimited options → the PSPACE-shaped regime default kicks in (the
    // plan explains it); answers stay a sound subset either way
    let plan = planner::plan(&db, &q);
    assert!(
        plan.explain().contains("default budget (PSPACE"),
        "{}",
        plan.explain()
    );
    let outcome = planner::answers_governed(&db, &q, &EvalOptions::sequential());
    assert!(outcome.answers.is_subset(&full));
    if outcome.termination == Termination::Complete {
        assert_eq!(outcome.answers, full);
    }
}

/// Governed bit-parallel runs obey the same soundness contract as flat:
/// subset answers under truncation, bit-identical answers on `Complete` —
/// at every thread count, with the bitmap kernel actually engaged (the
/// arity-3 workload sits inside both bit-parallel gates).
#[test]
fn governed_bitparallel_matches_flat() {
    use ecrpq::eval::Layout;
    let (db, q) = workload(3, 14);
    let prepared = PreparedQuery::build(&q).expect("valid");
    let full = engine::answers_product(&db, &prepared, &EvalOptions::sequential());
    assert!(full.len() >= 10, "need a meaningful answer set");
    let mut saw_truncated = false;
    for threads in [1usize, 2, 4, 8] {
        for cap in [200u64, u64::MAX / 4] {
            let opts = EvalOptions::with_threads(threads)
                .with_layout(Layout::BitParallel)
                .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
            let o = engine::answers_product_governed(&db, &prepared, &opts);
            assert!(
                o.answers.is_subset(&full),
                "threads={threads} cap={cap}: subset violated"
            );
            if o.termination.is_complete() {
                assert_eq!(o.answers, full, "threads={threads} cap={cap}");
            } else {
                saw_truncated = true;
            }
        }
    }
    assert!(saw_truncated, "the small cap must actually truncate");
}

/// Regression (memory accounting): under `Layout::BitParallel` an arity-4
/// atom exceeds the kernel's arity gate and is downgraded to the scalar
/// path, which still allocates its visited-stamp array even though the
/// layout nominally replaces stamps with bitmaps. Those bytes must reach
/// the governor: a memory cap smaller than the stamp array has to trip.
/// (The fix computes the charge from the arrays actually allocated rather
/// than from the layout, which would let the downgraded bytes slip past.)
#[test]
fn memory_cap_sees_stamps_of_downgraded_atoms() {
    use ecrpq::eval::{ExhaustedResource, Layout};
    let mut q = big_component_query(4, 2);
    q.set_free(&[NodeVar(0), NodeVar(1)]);
    let db = random_db(10, 2.0, 2, 97);
    let prepared = PreparedQuery::build(&q).expect("valid");
    // arity 4 > the bitmap arity gate: the atom runs scalar and keeps
    // stamps of 10⁴ × |Q| u32 slots ≈ 80 kB — above the 64 KiB cap, while
    // the run's other tracked allocations stay well below it
    let cap_opts = |bytes: u64| {
        EvalOptions::sequential()
            .with_layout(Layout::BitParallel)
            .with_budget(ResourceBudget::unlimited().with_max_memory_bytes(bytes))
    };
    let o = engine::answers_product_governed(&db, &prepared, &cap_opts(64 << 10));
    assert_eq!(
        o.termination,
        Termination::BudgetExhausted {
            resource: ExhaustedResource::Memory
        },
        "downgraded stamp bytes slipped past the memory cap"
    );
    // a cap that accommodates the stamps completes and matches flat
    let o = engine::answers_product_governed(&db, &prepared, &cap_opts(1 << 30));
    assert!(o.termination.is_complete());
    let full = engine::answers_product(&db, &prepared, &EvalOptions::sequential());
    assert_eq!(o.answers, full);
}

/// Tree-decomposition and plain CQ governed paths obey the same subset /
/// complete-iff-identical contract.
#[test]
fn governed_cq_paths_are_sound() {
    use ecrpq::eval::ecrpq_to_cq;
    let (db, q) = workload(2, 10);
    let prepared = PreparedQuery::build(&q).expect("valid");
    let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
    let full: BTreeSet<Vec<u32>> = engine::answers_cq(&rdb, &cq, &EvalOptions::sequential());
    for cap in [64u64, 4096, u64::MAX / 4] {
        let opts = EvalOptions::sequential()
            .with_budget(ResourceBudget::unlimited().with_max_configurations(cap));
        let o = engine::answers_cq_governed(&rdb, &cq, &opts);
        assert!(o.answers.is_subset(&full), "cap={cap}");
        if o.termination == Termination::Complete {
            assert_eq!(o.answers, full, "cap={cap}");
        }
        let td = engine::answers_cq_treedec_governed(&rdb, &cq, &opts);
        assert!(td.answers.is_subset(&full), "treedec cap={cap}");
        if td.termination == Termination::Complete {
            assert_eq!(td.answers, full, "treedec cap={cap}");
        }
        let b = engine::eval_cq_governed(&rdb, &cq, &opts);
        if b.answers {
            // `true` is always definitive
            assert!(!full.is_empty(), "cap={cap}");
        }
        let tb = engine::eval_cq_treedec_governed(&rdb, &cq, &opts);
        if tb.answers {
            assert!(!full.is_empty(), "treedec boolean cap={cap}");
        }
    }
}
