//! Property test: the analyzer's regime classification must agree with
//! the planner's transcription of Theorems 3.1 and 3.2.
//!
//! The analyzer (`ecrpq-analyze`) re-derives the regime of a query from
//! its measures and configurable thresholds, independently of
//! `planner::combined_regime`/`param_regime`, which speak about *classes*
//! via [`ClassBounds`]. The two must coincide when the class is read off
//! the thresholds: a measure within its threshold is "bounded" (by the
//! threshold), a measure over it is "unbounded" (`None`).

use ecrpq::analyze::{analyze_with, AnalyzerConfig};
use ecrpq::eval::planner::{combined_regime, param_regime, ClassBounds};
use ecrpq::workloads::{random_ecrpq, RandomQueryParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// 200 random queries × random thresholds: the analyzer's
    /// `CombinedClass`/`ParamClass` matches the planner's
    /// `CombinedRegime`/`ParamRegime` for the induced class bounds.
    #[test]
    fn regime_classification_agrees_with_planner(
        node_vars in 1usize..5,
        path_atoms in 1usize..6,
        rel_atoms in 0usize..4,
        max_arity in 1usize..4,
        seed in 0u64..1_000_000,
        cc_vertex_threshold in 0usize..4,
        cc_hedge_threshold in 0usize..4,
        treewidth_threshold in 0usize..3,
    ) {
        let params = RandomQueryParams {
            node_vars,
            path_atoms,
            rel_atoms,
            max_arity,
            num_symbols: 2,
        };
        let q = random_ecrpq(&params, seed);
        let cfg = AnalyzerConfig {
            cc_vertex_threshold,
            cc_hedge_threshold,
            treewidth_threshold,
            ..AnalyzerConfig::default()
        };
        let a = analyze_with(&q, &cfg);
        let m = a.measures;
        // Thresholds induce a class: within threshold = bounded by it,
        // over threshold = unbounded.
        let bounds = ClassBounds {
            cc_vertex: (m.cc_vertex <= cfg.cc_vertex_threshold)
                .then_some(cfg.cc_vertex_threshold),
            cc_hedge: (m.cc_hedge <= cfg.cc_hedge_threshold)
                .then_some(cfg.cc_hedge_threshold),
            treewidth: (m.treewidth <= cfg.treewidth_threshold)
                .then_some(cfg.treewidth_threshold),
        };
        prop_assert_eq!(
            combined_regime(&bounds).to_string(),
            a.combined.to_string(),
            "measures {:?} under thresholds v={} h={} t={}",
            m, cc_vertex_threshold, cc_hedge_threshold, treewidth_threshold
        );
        prop_assert_eq!(
            param_regime(&bounds).to_string(),
            a.param.to_string(),
            "measures {:?} under thresholds v={} t={}",
            m, cc_vertex_threshold, treewidth_threshold
        );
        // The analyzer's measures are exactly `Ecrpq::measures`.
        prop_assert_eq!(m, q.measures());
    }
}
