//! End-to-end flows: text → parser → measures → planner → evaluation →
//! witnesses, across the public API surface.

use ecrpq::eval::planner::{self, CombinedRegime, ParamRegime, Strategy};
use ecrpq::eval::product::witness_product;
use ecrpq::eval::PreparedQuery;
use ecrpq::graph::{parse_graph, GraphDb};
use ecrpq::query::{parse_query, RelationRegistry};

fn grid_db() -> GraphDb {
    ecrpq::workloads::grid_db(4, 3)
}

#[test]
fn parse_plan_evaluate_roundtrip() {
    let db = grid_db();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x, y) :- x -[p1]-> y, x -[p2]-> y, eq_len(p1, p2), p1 in a*b*, p2 in b*a*",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let plan = planner::plan(&db, &q);
    assert_eq!(plan.combined, CombinedRegime::PolynomialTime);
    assert_eq!(plan.param, ParamRegime::Fpt);
    assert_eq!(plan.strategy, Strategy::CqTreedec);
    let answers = planner::answers(&db, &q);
    // on a grid, going right a, down b: paths "ab" and "ba" from corner 0
    // to the (1,1) cell both have length 2
    let tl = db.node("v0").unwrap();
    let diag = db.node("v5").unwrap();
    assert!(answers.contains(&vec![tl, diag]));
    // every vertex with itself (empty paths)
    assert!(answers.contains(&vec![tl, tl]));
}

#[test]
fn witness_for_parsed_query() {
    let db = grid_db();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "x -[p1]-> y, x -[p2]-> y, eq_len(p1, p2), p1 in aab, p2 in a(b|a)b",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let prepared = PreparedQuery::build(&q).unwrap();
    let w = witness_product(&db, &prepared).expect("satisfiable on the grid");
    assert_eq!(w.paths.len(), 2);
    let labels: Vec<String> = w
        .paths
        .iter()
        .map(|(_, p)| db.alphabet().decode(&p.label()))
        .collect();
    assert_eq!(labels[0], "aab");
    assert_eq!(labels[0].len(), labels[1].len());
    assert_eq!(w.paths[0].1.target(), w.paths[1].1.target());
}

#[test]
fn planner_switches_strategy_on_big_components() {
    // 5 parallel paths under one 5-ary relation on a biggish database: the
    // n^10 materialization must be rejected in favor of the product search.
    let db = ecrpq::workloads::cycle_db(64, 1);
    let q = ecrpq::workloads::big_component_query(5, 1);
    let plan = planner::plan(&db, &q);
    assert_eq!(plan.strategy, Strategy::DirectProduct);
    assert_eq!(plan.combined, CombinedRegime::PolynomialTime); // fixed query: all measures finite
    assert!(planner::evaluate(&db, &q)); // 5 equal-length loops exist
}

#[test]
fn unsatisfiable_queries_report_false_everywhere() {
    let db = parse_graph("u -a-> v\nv -a-> w\n").unwrap();
    let mut alphabet = db.alphabet().clone();
    // needs equal-length paths of length ≥ 3: the chain is too short
    let q = parse_query(
        "x -[p1]-> y, x -[p2]-> y, eq_len(p1, p2), p1 in aaa+",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    assert!(!planner::evaluate(&db, &q));
    let prepared = PreparedQuery::build(&q).unwrap();
    assert!(witness_product(&db, &prepared).is_none());
    assert!(planner::answers(&db, &q).is_empty());
}

#[test]
fn custom_relations_via_registry() {
    use ecrpq::automata::relations;
    use std::sync::Arc;
    let db = parse_graph("u -a-> v\nv -b-> u\n").unwrap();
    let mut alphabet = db.alphabet().clone();
    let mut registry = RelationRegistry::new();
    registry.register(
        "same_or_one_off",
        Arc::new(relations::edit_distance_le(1, 2)),
    );
    let q = parse_query(
        "q(x) :- x -[p1]-> y, x -[p2]-> y, same_or_one_off(p1, p2)",
        &mut alphabet,
        &registry,
    )
    .unwrap();
    let answers = planner::answers(&db, &q);
    assert!(!answers.is_empty());
}

#[test]
fn dot_export_of_query_database() {
    let db = parse_graph("u -a-> v\n").unwrap();
    let dot = ecrpq::graph::dot::to_dot(&db);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("label=\"a\""));
}

#[test]
fn measures_guide_regimes_consistently() {
    // one query from each regime family; the planner's class view must
    // match the theorems
    let db = ecrpq::workloads::cycle_db(8, 1);
    let chain = ecrpq::workloads::tractable_chain_query(2, 1);
    let plan = planner::plan(&db, &chain);
    assert_eq!(plan.measures.cc_vertex, 2);
    assert_eq!(plan.measures.treewidth, 1);
    assert_eq!(plan.combined, CombinedRegime::PolynomialTime);

    let big = ecrpq::workloads::big_component_query(3, 1);
    let plan = planner::plan(&db, &big);
    assert_eq!(plan.measures.cc_vertex, 3);
    // as a *class* with unbounded cc_vertex this would be PSPACE; the plan
    // reports the bounded view of this single query
    assert_eq!(plan.combined, CombinedRegime::PolynomialTime);
}
