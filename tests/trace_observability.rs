//! Golden tests for the observability renders, plus trace determinism.
//!
//! The phase table and `Plan::explain_traced` are rendered from a
//! synthetic `Metrics` (fixed nanos, so times are stable) and from a
//! real single-threaded run with the times zeroed out (counters on a
//! fixed query + graph are deterministic). Bless with `UPDATE_GOLDEN=1`.

use ecrpq::eval::planner::plan;
use ecrpq::eval::{
    answers_traced, render_phase_table, CollectingTracer, EvalOptions, Metrics, Phase,
};
use ecrpq::query::{parse_query, RelationRegistry};
use ecrpq::workloads::{random_db, tractable_chain_query};
use std::path::PathBuf;

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "render diverges from {name}; bless with UPDATE_GOLDEN=1 if intended"
    );
}

/// A fully synthetic metrics value exercising every column: sub-µs and
/// multi-ms times, zero rows, and non-zero governor/sampling counters.
fn synthetic_metrics() -> Metrics {
    let mut m = Metrics::default();
    {
        let p = m.phase_mut(Phase::Prepare);
        p.nanos = 750;
        p.items = 12;
    }
    {
        let p = m.phase_mut(Phase::Semijoin);
        p.nanos = 48_000;
        p.items = 4_096;
        p.pruned = 37;
        p.governor_checks = 1;
    }
    {
        let p = m.phase_mut(Phase::ProductBfs);
        p.nanos = 7_400_000;
        p.items = 123_456;
        p.frontier_peak = 512;
        p.governor_checks = 30;
        p.governor_aborts = 1;
        p.samples = 30;
    }
    {
        let p = m.phase_mut(Phase::Odometer);
        p.nanos = 2_100_000;
        p.items = 999;
        p.governor_checks = 4;
    }
    m
}

#[test]
fn golden_phase_table_render() {
    check_golden(
        "trace_phase_table.txt",
        &render_phase_table(&synthetic_metrics()),
    );
}

#[test]
fn golden_plan_explain_traced() {
    // a deterministic PTIME-regime plan; explain() carries no times
    let q = tractable_chain_query(3, 2);
    let db = random_db(8, 1.5, 2, 5);
    let p = plan(&db, &q);
    check_golden(
        "trace_plan_explain.txt",
        &p.explain_traced(&synthetic_metrics()),
    );
}

/// The table `analyze --trace` prints, reproduced from the library API
/// on a fixed query + graph with the wall-times zeroed (counter values
/// at one thread are deterministic, times are not).
#[test]
fn golden_analyze_trace_counters() {
    let db = random_db(10, 1.5, 2, 11);
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x, y) :- x -[p]-> y, y -[r]-> x, eq_len(p, r)",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let outcome = answers_traced(&db, &q, &EvalOptions::sequential());
    assert!(outcome.termination.is_complete());
    let mut m = outcome.metrics.expect("answers_traced folds metrics");
    for phase in Phase::ALL {
        m.phase_mut(phase).nanos = 0;
    }
    let render = format!(
        "{} answer(s)\n{}",
        outcome.answers.len(),
        render_phase_table(&m)
    );
    check_golden("trace_analyze_counters.txt", &render);
}

/// Same query + graph ⇒ identical counters at one thread: the collecting
/// tracer introduces no nondeterminism of its own.
#[test]
fn single_thread_trace_is_deterministic() {
    let db = random_db(12, 1.8, 2, 23);
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(
        "q(x, y) :- x -[p]-> y, x -[r]-> y, eq(p, r), p in (a|b)*",
        &mut alphabet,
        &RelationRegistry::new(),
    )
    .unwrap();
    let run = || {
        let o = answers_traced(&db, &q, &EvalOptions::sequential());
        let mut m = o.metrics.expect("metrics");
        for phase in Phase::ALL {
            m.phase_mut(phase).nanos = 0; // times vary; counters must not
        }
        (o.answers, m)
    };
    let (a1, m1) = run();
    let (a2, m2) = run();
    assert_eq!(a1, a2, "answers must be deterministic");
    assert_eq!(m1, m2, "counters must be deterministic at one thread");
}

/// A collecting tracer attached to a parallel run never changes the
/// answers — at any thread count.
#[test]
fn tracer_never_changes_answers() {
    use ecrpq::eval::engine;
    use ecrpq::eval::PreparedQuery;
    use ecrpq::query::NodeVar;
    use ecrpq::workloads::{env_seed, random_ecrpq, RandomQueryParams};
    let base = env_seed(0);
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    for case in 0..5u64 {
        let seed = base + case;
        let mut q = random_ecrpq(&params, seed + 9900);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(10, 1.8, 2, seed * 37 + 3);
        let prepared = PreparedQuery::build(&q).unwrap();
        let baseline = engine::answers_product(&db, &prepared, &EvalOptions::sequential());
        for threads in [1usize, 2, 4] {
            let tracer = CollectingTracer::new();
            let (traced, _) = engine::answers_product_with_stats_traced(
                &db,
                &prepared,
                &EvalOptions::with_threads(threads),
                &tracer,
            );
            assert_eq!(
                traced, baseline,
                "seed {seed}, {threads} thread(s): tracer changed the answers"
            );
        }
    }
}
