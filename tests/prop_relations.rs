//! Property-based tests for synchronous relations: the §2 claims about the
//! class (boolean closure, convolution semantics) checked on samples.

use ecrpq::automata::{convolve, deconvolve, relations, Symbol, SyncRel};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u8..2, 0..6)
}

fn arb_pair() -> impl Strategy<Value = (Vec<Symbol>, Vec<Symbol>)> {
    (arb_word(), arb_word())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Convolution/deconvolution round-trips.
    #[test]
    fn convolution_roundtrip(u in arb_word(), v in arb_word(), w in arb_word()) {
        let rows = convolve(&[&u, &v, &w]);
        let back = deconvolve(3, &rows).unwrap();
        prop_assert_eq!(back, vec![u, v, w]);
    }

    /// Equality relation = word equality.
    #[test]
    fn equality_semantics((u, v) in arb_pair()) {
        let eq = relations::equality(2);
        prop_assert_eq!(eq.contains(&[&u, &v]), u == v);
    }

    /// Prefix relation = prefix predicate.
    #[test]
    fn prefix_semantics((u, v) in arb_pair()) {
        let p = relations::prefix(2);
        prop_assert_eq!(p.contains(&[&u, &v]), v.starts_with(&u));
    }

    /// Equal-length relation = length equality.
    #[test]
    fn eq_length_semantics((u, v) in arb_pair()) {
        let el = relations::eq_length(2, 2);
        prop_assert_eq!(el.contains(&[&u, &v]), u.len() == v.len());
    }

    /// Hamming bound semantics.
    #[test]
    fn hamming_semantics((u, v) in arb_pair(), d in 0usize..3) {
        let h = relations::hamming_le(d, 2);
        let expected = u.len() == v.len()
            && u.iter().zip(&v).filter(|(a, b)| a != b).count() <= d;
        prop_assert_eq!(h.contains(&[&u, &v]), expected);
    }

    /// Edit-distance relation matches the DP reference.
    #[test]
    fn edit_distance_semantics((u, v) in arb_pair(), d in 0usize..3) {
        let r = relations::edit_distance_le(d, 2);
        prop_assert_eq!(
            r.contains(&[&u, &v]),
            relations::levenshtein(&u, &v) <= d,
            "u={:?} v={:?} d={}", u, v, d
        );
    }

    /// Boolean algebra: intersection/union/complement are pointwise.
    #[test]
    fn boolean_algebra((u, v) in arb_pair()) {
        let eq = relations::equality(2);
        let pre = relations::prefix(2);
        let i = eq.intersect(&pre);
        let un = eq.union(&pre);
        let c = pre.complement();
        let e = eq.contains(&[&u, &v]);
        let p = pre.contains(&[&u, &v]);
        prop_assert_eq!(i.contains(&[&u, &v]), e && p);
        prop_assert_eq!(un.contains(&[&u, &v]), e || p);
        prop_assert_eq!(c.contains(&[&u, &v]), !p);
    }

    /// De Morgan on samples: ¬(R ∩ S) = ¬R ∪ ¬S.
    #[test]
    fn de_morgan((u, v) in arb_pair()) {
        let r = relations::eq_length(2, 2);
        let s = relations::prefix(2);
        let lhs = r.intersect(&s).complement();
        let rhs = r.complement().union(&s.complement());
        prop_assert_eq!(lhs.contains(&[&u, &v]), rhs.contains(&[&u, &v]));
    }

    /// Join of equality along a chain is transitive equality.
    #[test]
    fn join_equality_chain(u in arb_word(), v in arb_word(), w in arb_word()) {
        let eq = relations::equality(2);
        let joined = SyncRel::join(&[(&eq, &[0, 1]), (&eq, &[1, 2])], 3);
        prop_assert_eq!(joined.contains(&[&u, &v, &w]), u == v && v == w);
    }

    /// Join respects each component independently (prefix ∧ eq-length).
    #[test]
    fn join_mixed(u in arb_word(), v in arb_word(), w in arb_word()) {
        let pre = relations::prefix(2);
        let el = relations::eq_length(2, 2);
        let joined = SyncRel::join(&[(&pre, &[0, 1]), (&el, &[1, 2])], 3);
        prop_assert_eq!(
            joined.contains(&[&u, &v, &w]),
            v.starts_with(&u) && v.len() == w.len()
        );
    }

    /// Projection semantics: (u,v) ∈ R ⇒ u ∈ π₀(R), plus the converse via
    /// a witness check on the prefix relation (π₀(prefix) = A*).
    #[test]
    fn projection_soundness((u, v) in arb_pair()) {
        let pre = relations::prefix(2);
        let p0 = pre.project(&[0]);
        if pre.contains(&[&u, &v]) {
            prop_assert!(p0.contains(&[&u]));
        }
        prop_assert!(p0.contains(&[&u])); // every word is a prefix of something
    }

    /// Universal relation contains everything; its complement is empty.
    #[test]
    fn universal_and_empty((u, v) in arb_pair()) {
        let univ = relations::universal(2, 2);
        prop_assert!(univ.contains(&[&u, &v]));
        let empty = univ.complement();
        prop_assert!(!empty.contains(&[&u, &v]));
        prop_assert!(empty.is_empty());
    }

    /// Witnesses are members.
    #[test]
    fn witness_is_member(d in 0usize..2) {
        let r = relations::edit_distance_le(d, 2);
        let w = r.witness().unwrap();
        let refs: Vec<&[Symbol]> = w.iter().map(|x| x.as_slice()).collect();
        prop_assert!(r.contains(&refs));
    }

    /// eq_length_min filters by minimum length.
    #[test]
    fn eq_length_min_semantics((u, v) in arb_pair(), min in 0usize..3) {
        let r = relations::eq_length_min(2, 2, min);
        prop_assert_eq!(
            r.contains(&[&u, &v]),
            u.len() == v.len() && u.len() >= min
        );
    }
}
