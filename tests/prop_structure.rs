//! Property-based tests for 2L graphs, measures, and treewidth.

use ecrpq::structure::treewidth::{
    decomposition_from_order, min_degree_order, min_fill_order, treewidth_lower_bound,
};
use ecrpq::structure::{treewidth_exact, treewidth_upper_bound, Graph, TwoLevelGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..10,
        proptest::collection::vec((0usize..10, 0usize..10), 0..25),
    )
        .prop_map(|(n, edges)| {
            let mut g = Graph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            g
        })
}

fn arb_2l() -> impl Strategy<Value = TwoLevelGraph> {
    (
        2usize..6,
        proptest::collection::vec((0usize..6, 0usize..6), 1..8),
        proptest::collection::vec(proptest::collection::vec(0usize..8, 1..4), 0..5),
    )
        .prop_map(|(nv, edges, hedges)| {
            let mut g = TwoLevelGraph::new(nv);
            for (u, v) in &edges {
                g.add_edge(u % nv, v % nv);
            }
            let ne = g.num_edges();
            for h in hedges {
                let members: Vec<usize> = h.iter().map(|&e| e % ne).collect();
                g.add_hyperedge(&members);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// lower bound ≤ exact ≤ heuristic upper bound; all decompositions
    /// valid.
    #[test]
    fn treewidth_sandwich(g in arb_graph()) {
        let lb = treewidth_lower_bound(&g);
        let (exact, dec) = treewidth_exact(&g);
        let (ub, ubdec) = treewidth_upper_bound(&g);
        prop_assert!(lb <= exact, "lb {lb} > exact {exact}");
        prop_assert!(exact <= ub, "exact {exact} > ub {ub}");
        dec.validate(&g).map_err(TestCaseError::fail)?;
        ubdec.validate(&g).map_err(TestCaseError::fail)?;
        prop_assert_eq!(dec.width(), exact);
    }

    /// Every elimination order yields a valid decomposition.
    #[test]
    fn any_order_valid(g in arb_graph()) {
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let dec = decomposition_from_order(&g, &order);
            dec.validate(&g).map_err(TestCaseError::fail)?;
        }
    }

    /// Treewidth is monotone under edge addition (checked pairwise).
    #[test]
    fn monotone_under_edges(g in arb_graph(), u in 0usize..10, v in 0usize..10) {
        let n = g.num_vertices();
        let (before, _) = treewidth_exact(&g);
        let mut g2 = g.clone();
        if u % n != v % n {
            g2.add_edge(u % n, v % n);
        }
        let (after, _) = treewidth_exact(&g2);
        prop_assert!(after >= before);
    }

    /// 2L measures are consistent with the component partition.
    #[test]
    fn measures_consistent(g in arb_2l()) {
        let comps = g.rel_components();
        // partitions: every edge in exactly one component
        let total: usize = comps.edges.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_edges());
        let htotal: usize = comps.hedges.iter().map(Vec::len).sum();
        prop_assert_eq!(htotal, g.num_hyperedges());
        prop_assert_eq!(
            g.cc_vertex(),
            comps.edges.iter().map(Vec::len).max().unwrap_or(0)
        );
        prop_assert_eq!(
            g.cc_hedge(),
            comps.hedges.iter().map(Vec::len).max().unwrap_or(0)
        );
        // hyperedges lie within one component
        for (h, &c) in comps.comp_of_hedge.iter().enumerate() {
            for &e in g.hyperedge(h) {
                prop_assert_eq!(comps.comp_of_edge[e], c);
            }
        }
    }

    /// Merging components (Ĝ of §4) preserves G^node and caps cc_hedge at 1.
    #[test]
    fn merged_invariants(g in arb_2l()) {
        let m = g.merged();
        prop_assert!(m.cc_hedge() <= 1);
        prop_assert_eq!(m.cc_vertex(), g.cc_vertex());
        prop_assert_eq!(m.node_graph().edges(), g.node_graph().edges());
    }

    /// The Lemma 5.2 direction: a collapse decomposition implies a bounded
    /// node-graph decomposition — checked numerically:
    /// tw(G^node) ≤ (tw(collapse)+1)·2·cc_vertex − 1.
    #[test]
    fn lemma_5_2_bound(g in arb_2l()) {
        use ecrpq::structure::{lemma52_bound, node_decomposition_from_collapse};
        let n = g.cc_vertex().max(1);
        let node = g.node_graph();
        let collapse = g.collapse().simple();
        let (tw_node, _) = treewidth_exact(&node);
        let (tw_col, cdec) = treewidth_exact(&collapse);
        prop_assert!(
            tw_node < (tw_col + 1) * 2 * n,
            "tw_node={tw_node} tw_col={tw_col} n={n}"
        );
        // constructive version: the bag-replacement transformation yields
        // a *valid* decomposition of G^node within the paper's bound
        let ndec = node_decomposition_from_collapse(&g, &cdec);
        ndec.validate(&node).map_err(TestCaseError::fail)?;
        prop_assert!(ndec.width() <= lemma52_bound(tw_col, n));
    }

    /// Nice decompositions: valid shape, same width, edges still covered.
    #[test]
    fn nice_decomposition_properties(g in arb_graph()) {
        use ecrpq::structure::to_nice;
        let (w, dec) = treewidth_exact(&g);
        let nice = to_nice(&dec);
        nice.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(nice.width(), w);
        for (u, v) in g.edges() {
            prop_assert!(
                nice.bags.iter().any(|b| b.contains(&u) && b.contains(&v)),
                "edge ({}, {}) uncovered", u, v
            );
        }
        // every vertex gets forgotten exactly where its subtree tops out —
        // at least once overall
        for v in 0..g.num_vertices() {
            prop_assert!(nice
                .kinds
                .iter()
                .any(|k| matches!(k, ecrpq::structure::NiceKind::Forget(w) if *w == v)));
        }
    }

    /// The collapse multigraph has exactly 2 edge-endpoints per 2L edge.
    #[test]
    fn collapse_edge_count(g in arb_2l()) {
        let m = g.collapse();
        prop_assert_eq!(m.num_edges(), 2 * g.num_edges());
        prop_assert_eq!(
            m.num_vertices(),
            g.num_vertices() + g.rel_components().edges.len()
        );
    }
}
