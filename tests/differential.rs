//! Differential testing: every evaluator must agree on every instance.
//!
//! Random ECRPQs (mixed relations, random reachability structure) are
//! evaluated on random graph databases through three independent code
//! paths — the direct product search (Prop. 2.2 algorithm), the Lemma 4.3
//! reduction with backtracking CQ evaluation, and the same reduction with
//! the tree-decomposition + Yannakakis evaluator — plus the planner
//! front-end. Boolean answers and full answer sets must coincide.

use ecrpq::eval::cq_eval::{answers_cq, answers_cq_treedec, eval_cq, eval_cq_treedec};
use ecrpq::eval::planner;
use ecrpq::eval::product::{answers_product, witness_product};
use ecrpq::eval::{ecrpq_to_cq, eval_product, PreparedQuery};
use ecrpq::query::NodeVar;
use ecrpq::workloads::{random_db, random_ecrpq, RandomQueryParams};

#[test]
fn boolean_evaluators_agree_on_random_instances() {
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    let mut sat = 0;
    for seed in 0..60u64 {
        let q = random_ecrpq(&params, seed);
        let db = random_db(5, 1.6, 2, seed * 31 + 1);
        let prepared = PreparedQuery::build(&q).unwrap();
        let direct = eval_product(&db, &prepared);
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        let bt = eval_cq(&rdb, &cq);
        let td = eval_cq_treedec(&rdb, &cq);
        assert_eq!(direct, bt, "seed {seed}: product vs backtracking on {q}");
        assert_eq!(direct, td, "seed {seed}: product vs treedec on {q}");
        assert_eq!(
            direct,
            planner::evaluate(&db, &q),
            "seed {seed}: planner disagrees on {q}"
        );
        if direct {
            sat += 1;
        }
    }
    // the workload must exercise both outcomes
    assert!(sat > 5, "too few satisfiable instances ({sat})");
    assert!(sat < 55, "too few unsatisfiable instances ({})", 60 - sat);
}

#[test]
fn answer_sets_agree_on_random_instances() {
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    for seed in 0..25u64 {
        let mut q = random_ecrpq(&params, seed + 1000);
        q.set_free(&[NodeVar(0), NodeVar(1)]);
        let db = random_db(4, 1.5, 2, seed * 17 + 3);
        let prepared = PreparedQuery::build(&q).unwrap();
        let a_direct = answers_product(&db, &prepared);
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        let a_bt = answers_cq(&rdb, &cq);
        let a_td = answers_cq_treedec(&rdb, &cq);
        assert_eq!(
            a_direct, a_bt,
            "seed {seed}: answers product vs backtracking"
        );
        assert_eq!(a_direct, a_td, "seed {seed}: answers product vs treedec");
        assert_eq!(
            a_direct,
            planner::answers(&db, &q),
            "seed {seed}: planner answers"
        );
    }
}

#[test]
fn witnesses_are_valid_satisfying_assignments() {
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    let mut checked = 0;
    for seed in 0..40u64 {
        let q = random_ecrpq(&params, seed + 2000);
        let db = random_db(5, 1.8, 2, seed * 13 + 7);
        let prepared = PreparedQuery::build(&q).unwrap();
        let Some(w) = witness_product(&db, &prepared) else {
            continue;
        };
        checked += 1;
        assert_eq!(w.paths.len(), q.num_path_vars());
        // every path valid in db, endpoints match the node assignment
        for (p, path) in &w.paths {
            assert!(path.is_valid_in(&db), "seed {seed}: invalid witness path");
            let (NodeVar(s), NodeVar(d)) = q.endpoints(*p);
            assert_eq!(path.source(), w.nodes[s as usize], "seed {seed}: source");
            assert_eq!(path.target(), w.nodes[d as usize], "seed {seed}: target");
        }
        // every relation atom satisfied by the witness labels
        for atom in q.rel_atoms() {
            let labels: Vec<Vec<u8>> = atom
                .args
                .iter()
                .map(|pv| {
                    w.paths
                        .iter()
                        .find(|(p, _)| p == pv)
                        .map(|(_, path)| path.label())
                        .expect("path for every variable")
                })
                .collect();
            let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_slice()).collect();
            assert!(
                atom.rel.contains(&refs),
                "seed {seed}: atom {} violated by witness",
                atom.name
            );
        }
    }
    assert!(checked >= 10, "too few satisfiable instances ({checked})");
}

#[test]
fn bigger_arity_random_queries_agree() {
    let params = RandomQueryParams {
        node_vars: 4,
        path_atoms: 4,
        rel_atoms: 3,
        max_arity: 3,
        num_symbols: 2,
    };
    for seed in 0..20u64 {
        let q = random_ecrpq(&params, seed + 3000);
        let db = random_db(4, 1.5, 2, seed * 7 + 11);
        let prepared = PreparedQuery::build(&q).unwrap();
        let direct = eval_product(&db, &prepared);
        let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
        assert_eq!(direct, eval_cq_treedec(&rdb, &cq), "seed {seed} on {q}");
    }
}

#[test]
fn counting_agrees_with_answer_enumeration() {
    use ecrpq::eval::count_ecrpq_assignments;
    let params = RandomQueryParams {
        node_vars: 3,
        path_atoms: 3,
        rel_atoms: 2,
        max_arity: 2,
        num_symbols: 2,
    };
    for seed in 0..25u64 {
        let mut q = random_ecrpq(&params, seed + 5000);
        // make *all* node variables free: answers = satisfying assignments
        let all: Vec<NodeVar> = (0..q.num_node_vars() as u32).map(NodeVar).collect();
        q.set_free(&all);
        let db = random_db(4, 1.6, 2, seed * 3 + 1);
        let prepared = PreparedQuery::build(&q).unwrap();
        let enumerated = answers_product(&db, &prepared).len() as u64;
        let counted = count_ecrpq_assignments(&db, &prepared);
        assert_eq!(enumerated, counted, "seed {seed} on {q}");
    }
}

#[test]
fn empty_and_single_node_databases() {
    let params = RandomQueryParams::default();
    for seed in 0..10u64 {
        let q = random_ecrpq(&params, seed);
        for n in [0usize, 1] {
            let db = random_db(n, 1.0, 2, seed);
            let prepared = PreparedQuery::build(&q).unwrap();
            let direct = eval_product(&db, &prepared);
            let (cq, rdb, _) = ecrpq_to_cq(&db, &prepared);
            assert_eq!(direct, eval_cq_treedec(&rdb, &cq), "seed {seed}, n={n}");
        }
    }
}
