//! Randomized equivalence checking for the §5 reductions, on larger and
//! more varied instances than the unit tests: every reduction's output is
//! evaluated with the core evaluators and compared against an independent
//! oracle.

use ecrpq::automata::Alphabet;
use ecrpq::eval::cq_eval::eval_cq;
use ecrpq::eval::{eval_product, PreparedQuery};
use ecrpq::query::RelationalDb;
use ecrpq::reductions::{
    cq_to_ecrpq, ine_to_ecrpq_big_component, ine_to_ecrpq_high_degree, intersection_nonempty,
    pie_to_ecrpq_chain, pie_to_ecrpq_wide, CollapseCq,
};
use ecrpq::structure::TwoLevelGraph;
use ecrpq::workloads::{planted_ine, random_ine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn flower(r: usize) -> TwoLevelGraph {
    let mut g = TwoLevelGraph::new(2);
    let edges: Vec<usize> = (0..r).map(|_| g.add_edge(0, 1)).collect();
    for w in edges.windows(2) {
        g.add_hyperedge(w);
    }
    if r == 1 {
        g.add_hyperedge(&[edges[0]]);
    }
    g
}

fn star(r: usize) -> TwoLevelGraph {
    let mut g = TwoLevelGraph::new(2);
    let pivot = g.add_edge(0, 1);
    for _ in 0..r {
        let other = g.add_edge(0, 1);
        g.add_hyperedge(&[pivot, other]);
    }
    g
}

fn chain_2l(k: usize) -> TwoLevelGraph {
    let mut g = TwoLevelGraph::new(2);
    let edges: Vec<usize> = (0..=k).map(|_| g.add_edge(0, 1)).collect();
    for i in 0..k {
        g.add_hyperedge(&[edges[i], edges[i + 1]]);
    }
    g
}

fn wide_2l(r: usize) -> TwoLevelGraph {
    let mut g = TwoLevelGraph::new(2);
    let edges: Vec<usize> = (0..r).map(|_| g.add_edge(0, 1)).collect();
    g.add_hyperedge(&edges);
    g
}

#[test]
fn lemma51_case1_random_instances() {
    let alphabet = Alphabet::ascii_lower(2);
    let mut nonempty = 0;
    for seed in 0..12u64 {
        for r in [1usize, 2, 3] {
            let langs = if seed % 2 == 0 {
                random_ine(r, 3, 2, seed)
            } else {
                planted_ine(r, 3, 2, 2, seed).0
            };
            let expected = intersection_nonempty(&langs);
            let (q, db) = ine_to_ecrpq_big_component(&langs, &alphabet, &flower(r)).unwrap();
            let prepared = PreparedQuery::build(&q).unwrap();
            assert_eq!(
                eval_product(&db, &prepared),
                expected,
                "lemma 5.1 case 1, seed {seed}, r {r}"
            );
            if expected {
                nonempty += 1;
            }
        }
    }
    assert!(nonempty > 5, "workload never non-empty");
}

#[test]
fn lemma51_case2_random_instances() {
    let alphabet = Alphabet::ascii_lower(2);
    for seed in 0..12u64 {
        for r in [1usize, 2, 3] {
            let langs = if seed % 2 == 0 {
                random_ine(r, 3, 2, seed + 100)
            } else {
                planted_ine(r, 3, 2, 2, seed + 100).0
            };
            let expected = intersection_nonempty(&langs);
            let (q, db) = ine_to_ecrpq_high_degree(&langs, &alphabet, &star(r)).unwrap();
            let prepared = PreparedQuery::build(&q).unwrap();
            assert_eq!(
                eval_product(&db, &prepared),
                expected,
                "lemma 5.1 case 2, seed {seed}, r {r}"
            );
        }
    }
}

#[test]
fn lemma54_chain_random_instances() {
    let alphabet = Alphabet::ascii_lower(2);
    for seed in 0..10u64 {
        for k in [1usize, 2, 3] {
            let langs = if seed % 2 == 0 {
                random_ine(k, 3, 2, seed + 200)
            } else {
                planted_ine(k, 3, 2, 2, seed + 200).0
            };
            let expected = intersection_nonempty(&langs);
            let (q, db) = pie_to_ecrpq_chain(&langs, &alphabet, &chain_2l(k)).unwrap();
            let prepared = PreparedQuery::build(&q).unwrap();
            assert_eq!(
                eval_product(&db, &prepared),
                expected,
                "lemma 5.4 chain, seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn lemma54_wide_random_instances() {
    let alphabet = Alphabet::ascii_lower(2);
    for seed in 0..10u64 {
        for k in [1usize, 2, 3] {
            let langs = if seed % 2 == 0 {
                random_ine(k, 3, 2, seed + 300)
            } else {
                planted_ine(k, 3, 2, 2, seed + 300).0
            };
            let expected = intersection_nonempty(&langs);
            let (q, db) = pie_to_ecrpq_wide(&langs, &alphabet, &wide_2l(k.max(2))).unwrap();
            let prepared = PreparedQuery::build(&q).unwrap();
            assert_eq!(
                eval_product(&db, &prepared),
                expected,
                "lemma 5.4 wide, seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn lemma54_with_dfa_inputs() {
    // p-IE's literal input format is DFAs; the chain reduction and the
    // two oracles (NFA-product and DFA-product) must all agree.
    use ecrpq::reductions::intersection_witness_dfas;
    use ecrpq::workloads::random_dfa;
    let alphabet = Alphabet::ascii_lower(2);
    for seed in 0..12u64 {
        for k in [1usize, 2, 3] {
            let dfas: Vec<_> = (0..k)
                .map(|i| random_dfa(3, 2, 0.4, seed * 7 + i as u64))
                .collect();
            let via_dfa = intersection_witness_dfas(&dfas).is_some();
            let nfas: Vec<_> = dfas.iter().map(|d| d.to_nfa()).collect();
            assert_eq!(via_dfa, intersection_nonempty(&nfas), "oracles disagree");
            let (q, db) = pie_to_ecrpq_chain(&nfas, &alphabet, &chain_2l(k)).unwrap();
            let prepared = PreparedQuery::build(&q).unwrap();
            assert_eq!(
                eval_product(&db, &prepared),
                via_dfa,
                "lemma 5.4 on DFAs, seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn lemma53_random_instances() {
    for seed in 0..15u64 {
        let mut rng = SmallRng::seed_from_u64(seed + 400);
        // random 2L graph: 2-3 edges, one or two hyperedges
        let mut g = TwoLevelGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let e2 = g.add_edge(2, 0);
        if rng.gen_bool(0.5) {
            g.add_hyperedge(&[e0, e1]);
            g.add_hyperedge(&[e1, e2]);
        } else {
            g.add_hyperedge(&[e0, e1, e2]);
        }
        let ccq = CollapseCq {
            graph: g,
            rels: vec![
                ("R".into(), "S".into()),
                ("T".into(), "U".into()),
                ("R".into(), "U".into()),
            ],
        };
        let n = rng.gen_range(2..6);
        let mut rdb = RelationalDb::new(n);
        for name in ["R", "S", "T", "U"] {
            rdb.declare(name, 2);
            let tuples = rng.gen_range(0..(n * n / 2 + 2));
            for _ in 0..tuples {
                let a = rng.gen_range(0..n) as u32;
                let b = rng.gen_range(0..n) as u32;
                rdb.insert(name, &[a, b]);
            }
        }
        let expected = eval_cq(&rdb, &ccq.to_cq());
        let (q, gdb) = cq_to_ecrpq(&ccq, &rdb);
        let prepared = PreparedQuery::build(&q).unwrap();
        assert_eq!(
            eval_product(&gdb, &prepared),
            expected,
            "lemma 5.3, seed {seed}"
        );
    }
}
